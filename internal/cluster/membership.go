package cluster

import (
	"fmt"
	"net"
	"time"

	"telegraphcq/internal/flux"
)

// Dynamic membership and self-healing. The coordinator runs a registry
// listener workers dial to join (HELLO → ADMIT); admitted workers are
// dialed back on their exchange address and folded into the shard map
// by the healer, which owns every repair policy that is not an
// immediate failover: orphaned-bucket adoption, process-pair
// re-establishment, bucket fill onto joiners, the skew balancer, and
// periodic floor journaling.

// listenRegistry binds the membership registry and serves joins until
// Close; returns the bound address (use ":0" in tests).
func (c *Coordinator) listenRegistry(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	c.regLn = ln
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.serveRegistry(conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// RegistryAddr returns the bound registry address ("" when membership
// is static).
func (c *Coordinator) RegistryAddr() string {
	if c.regLn == nil {
		return ""
	}
	return c.regLn.Addr().String()
}

// serveRegistry handles one JOIN: short-lived, deadline-bounded; the
// durable relationship is the exchange connection dialed back.
func (c *Coordinator) serveRegistry(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	wr := newWire(conn)
	payload, err := wr.readFrame()
	if err != nil || len(payload) == 0 || payload[0] != mJoin {
		return
	}
	d := &decoder{buf: payload[1:]}
	name := string(d.bytes(d.uvarint()))
	exchangeAddr := string(d.bytes(d.uvarint()))
	maxEpoch := d.varint()
	if d.err != nil || name == "" || exchangeAddr == "" {
		return
	}
	id, epoch, err := c.admit(name, exchangeAddr, maxEpoch)
	if err != nil {
		c.logf("cluster: join %q (%s) refused: %v", name, exchangeAddr, err)
		return // no admit: the worker retries under backoff
	}
	if err := wr.writeFrame(appendAdmit(nil, id, epoch)); err != nil {
		return
	}
	c.logf("cluster: admitted %q as node %d (exchange %s, epoch %d)", name, id, exchangeAddr, epoch)
}

// admit folds one join into the roster. Identity is the worker's name:
// a known live worker re-registering keeps its id (its floors and
// assignments survive a reconnect or an address change); a name whose
// node was declared dead gets a fresh id — death is terminal for an id,
// never for a worker. A join reporting an epoch above ours means a
// newer coordinator owns this cluster: self-fence instead of admitting,
// so a slow old process can never split-brain the bucket map.
func (c *Coordinator) admit(name, addr string, maxEpoch int64) (int, int64, error) {
	var rec []byte
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, 0, fmt.Errorf("coordinator closed")
	}
	if maxEpoch > c.epoch {
		c.fenced = true
		c.mu.Unlock()
		c.logf("cluster: FENCED — worker %q has seen epoch %d, ours is %d; refusing to route", name, maxEpoch, c.epoch)
		return 0, 0, fmt.Errorf("stale coordinator: epoch %d < %d", c.epoch, maxEpoch)
	}
	n := c.byName[name]
	if n != nil {
		n.mu.Lock()
		if n.alive {
			if n.addr != addr {
				n.addr = addr
				if n.w != nil {
					n.w.close() // monitor redials the new address
					n.w = nil
				}
				rec = jrNode(n.id, name, addr)
			}
			n.lastPong = time.Now() // fresh grace for the dial-back
			n.pingSent = time.Time{}
			id := n.id
			n.mu.Unlock()
			c.joins++
			c.mu.Unlock()
			if err := c.journalAppend(rec); err != nil {
				c.logf("cluster: journal: %v", err)
			}
			return id, c.epoch, nil
		}
		n.mu.Unlock() // dead id: fall through to a fresh one
	}
	id := len(c.nodes)
	nn := &node{id: id, name: name, addr: addr, alive: true, ctl: make(chan []byte, 1), lastPong: time.Now()}
	c.nodes = append(c.nodes, nn)
	c.byName[name] = nn
	c.joins++
	rec = jrNode(id, name, addr)
	c.mu.Unlock()
	if err := c.journalAppend(rec); err != nil {
		c.logf("cluster: journal: %v", err)
	}
	return id, c.epoch, nil
}

// reconcileFloors folds a worker's floor report (the first frame after
// every exchange hello) into the shard map. For each bucket the node is
// assigned, the worker is the source of truth above the journaled
// floor: its floor raises ackP/ackS, the acked high-water mark (without
// re-crediting the acked counter — those entries were acked by a
// previous incarnation), and nextSeq. A report *below* the recorded
// floor means the worker lost its state (crashed and rejoined empty):
// the replica is demoted to orphan/unreplicated and the healer takes
// over — promoting the surviving replica instead of trusting a hole.
func (c *Coordinator) reconcileFloors(n *node, floors map[int]int64) {
	var recs [][]byte
	c.mu.Lock()
	for b, bm := range c.buckets {
		if bm.primary == n.id {
			f := floors[b] // 0 when unreported: an empty worker
			switch {
			case f >= bm.ackP:
				bm.ackP = f
				if f > bm.ackHi {
					bm.ackHi = f
				}
				if f+1 > bm.nextSeq {
					bm.nextSeq = f + 1
				}
			default:
				bm.primary = -1
				bm.orphanSince = time.Now()
				recs = append(recs, jrAssign(b, bm.primary, bm.secondary))
			}
		}
		if bm.secondary == n.id {
			f := floors[b]
			switch {
			case f >= bm.ackS:
				bm.ackS = f
				if f+1 > bm.nextSeq {
					bm.nextSeq = f + 1
				}
			default:
				bm.secondary = -1
				recs = append(recs, jrAssign(b, bm.primary, bm.secondary))
			}
		}
	}
	c.mu.Unlock()
	if len(recs) > 0 {
		c.logf("cluster: node %d rejoined without state for %d replicas; healing", n.id, len(recs))
	}
	if err := c.journalAppend(recs...); err != nil {
		c.logf("cluster: journal: %v", err)
	}
}

// --------------------------------------------------------------- healer

// healer is the repair policy loop: every heartbeat it adopts orphaned
// buckets (promote the surviving secondary, or bootstrap/reinit onto a
// connected node), re-establishes process pairs left unreplicated by
// failovers, fills joiners by moving buckets onto under-loaded nodes,
// runs the skew balancer, and periodically journals ack floors.
func (c *Coordinator) healer() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.Heartbeat)
	defer tick.Stop()
	pass := 0
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		pass++
		c.mu.Lock()
		fenced := c.fenced
		c.mu.Unlock()
		if fenced {
			continue // a newer coordinator owns the cluster now
		}
		c.healOrphans()
		if c.repl {
			c.healReplication()
		}
		if pass%5 == 0 {
			c.rebalanceJoiners()
		}
		c.balanceTick()
		if c.jr != nil && pass%4 == 0 {
			c.journalFloorsNow()
		}
	}
}

// orphanFix is one planned reassignment of an ownerless bucket.
type orphanFix struct {
	bucket int
	dst    int
	floor  int64
	lossy  bool // true: entries ≤ floor are being abandoned (BucketsLost)
}

// healOrphans adopts buckets with no live primary. Preference order:
// promote a surviving secondary (zero acked loss); replay the full
// pend list onto an empty install when nothing was ever released
// (lossless bootstrap — also the fresh-bucket case of a dynamic-only
// cluster); after OrphanGrace with neither possible, restart the bucket
// empty past the abandoned range (BucketsLost records the damage).
func (c *Coordinator) healOrphans() {
	now := time.Now()
	var promos []int // new primary ids to retransmit
	var fixes []orphanFix
	var recs [][]byte
	c.mu.Lock()
	for b, bm := range c.buckets {
		if bm.primary >= 0 || bm.paused {
			continue
		}
		if bm.secondary >= 0 && c.nodeLiveLocked(bm.secondary) {
			bm.primary = bm.secondary
			bm.secondary = -1
			if bm.ackS > bm.ackHi {
				c.acked += bm.ackS - bm.ackHi
				bm.ackHi = bm.ackS
			}
			bm.ackP = bm.ackS
			c.promotions++
			promos = append(promos, bm.primary)
			recs = append(recs, jrAssign(b, bm.primary, bm.secondary))
			continue
		}
		dst := c.leastLoadedLocked(-1)
		if dst < 0 {
			continue // nobody connected; keep waiting
		}
		// Lossless when the pend list still covers everything ever
		// assigned: install an empty state at floor 0 and replay.
		if bm.ackHi == 0 && int64(len(bm.pend)) == bm.nextSeq-1 {
			fixes = append(fixes, orphanFix{bucket: b, dst: dst, floor: 0})
		} else if now.Sub(bm.orphanSince) > c.cfg.OrphanGrace {
			fixes = append(fixes, orphanFix{bucket: b, dst: dst, floor: bm.nextSeq - 1, lossy: true})
		}
	}
	c.mu.Unlock()
	if err := c.journalAppend(recs...); err != nil {
		c.logf("cluster: journal: %v", err)
	}
	for _, p := range dedupInts(promos) {
		c.logf("cluster: healer promoted node %d for orphaned buckets", p)
		c.retransmit(p)
	}
	for _, fx := range fixes {
		if err := c.adoptOrphan(fx); err != nil {
			c.logf("cluster: adopt bucket %d on node %d: %v", fx.bucket, fx.dst, err)
		}
	}
}

// adoptOrphan installs an empty state at the planned floor on the
// destination and takes ownership. The install always happens — even at
// floor 0 — so any stale replica the node holds from an earlier epoch
// is superseded rather than folded into.
func (c *Coordinator) adoptOrphan(fx orphanFix) error {
	if _, err := c.ctlRequest(fx.dst, appendState(nil, mInstall, fx.bucket, fx.floor, flux.BucketState{}), mInstalled, c.moveTimeout()); err != nil {
		return err
	}
	c.mu.Lock()
	bm := c.buckets[fx.bucket]
	if bm.primary >= 0 {
		c.mu.Unlock()
		return nil // someone else adopted it while we were installing
	}
	bm.primary = fx.dst
	if fx.lossy {
		// Abandon the unrecoverable range: credit it so barriers
		// terminate, drop its pend entries, record the damage.
		if d := fx.floor - bm.ackHi; d > 0 {
			c.acked += d
			bm.ackHi = fx.floor
		}
		if fx.floor > bm.ackP {
			bm.ackP = fx.floor
		}
		i := 0
		for i < len(bm.pend) && bm.pend[i].seq <= fx.floor {
			i++
		}
		if i > 0 {
			bm.pend = append(bm.pend[:0], bm.pend[i:]...)
		}
		c.bucketsLost++
	}
	p2, s2 := bm.primary, bm.secondary
	c.mu.Unlock()
	if err := c.journalAppend(jrAssign(fx.bucket, p2, s2)); err != nil {
		c.logf("cluster: journal: %v", err)
	}
	if fx.lossy {
		c.logf("cluster: bucket %d restarted empty on node %d (floor %d; orphan grace expired)", fx.bucket, fx.dst, fx.floor)
	} else {
		c.logf("cluster: bucket %d adopted by node %d (lossless replay)", fx.bucket, fx.dst)
	}
	c.retransmit(fx.dst)
	return nil
}

// healReplication restores process pairs for buckets left unreplicated
// by failovers or floor demotions, a few per pass so state movement
// never floods the exchange.
func (c *Coordinator) healReplication() {
	const perPass = 4
	var todo []int
	c.mu.Lock()
	connected := 0
	for _, n := range c.nodes {
		if c.nodeConnectedLocked(n.id) {
			connected++
		}
	}
	if connected >= 2 {
		for b, bm := range c.buckets {
			if bm.secondary < 0 && bm.primary >= 0 && !bm.paused && c.nodeConnectedLocked(bm.primary) {
				todo = append(todo, b)
				if len(todo) == perPass {
					break
				}
			}
		}
	}
	c.mu.Unlock()
	for _, b := range todo {
		if err := c.repairReplication(b); err != nil {
			c.logf("cluster: repair bucket %d: %v", b, err)
		}
	}
}

// rebalanceJoiners fills under-loaded nodes (fresh joiners foremost):
// when a connected node holds at least two primaries fewer than the
// per-node average, buckets move onto it from the most-loaded node —
// coldest buckets first, so this never fights the skew balancer over a
// hot bucket. At most two moves per pass keeps handoff traffic bounded.
func (c *Coordinator) rebalanceJoiners() {
	const perPass = 2
	type move struct{ bucket, dst int }
	var moves []move
	c.mu.Lock()
	var conn []int
	count := map[int]int{}
	for _, n := range c.nodes {
		if c.nodeConnectedLocked(n.id) {
			conn = append(conn, n.id)
			count[n.id] = 0
		}
	}
	if len(conn) >= 2 {
		assigned := 0
		for _, bm := range c.buckets {
			if bm.primary >= 0 {
				assigned++
				if _, ok := count[bm.primary]; ok {
					count[bm.primary]++
				}
			}
		}
		avg := assigned / len(conn)
		taken := map[int]bool{}
		for _, dst := range conn {
			for count[dst] < avg-1 && len(moves) < perPass {
				// Donate from the most-loaded node its coldest bucket.
				srcID, srcMax := -1, -1
				for _, id := range conn {
					if count[id] > srcMax {
						srcID, srcMax = id, count[id]
					}
				}
				if srcID < 0 || srcID == dst || srcMax <= avg {
					break
				}
				best, bestRouted := -1, int64(-1)
				for b, bm := range c.buckets {
					if bm.primary != srcID || bm.paused || taken[b] {
						continue
					}
					if best < 0 || bm.routed < bestRouted {
						best, bestRouted = b, bm.routed
					}
				}
				if best < 0 {
					break
				}
				taken[best] = true
				count[srcID]--
				count[dst]++
				moves = append(moves, move{bucket: best, dst: dst})
			}
		}
	}
	c.mu.Unlock()
	for _, mv := range moves {
		if err := c.MoveBucket(mv.bucket, mv.dst); err != nil {
			c.logf("cluster: joiner rebalance bucket %d → node %d: %v", mv.bucket, mv.dst, err)
			continue
		}
		c.mu.Lock()
		c.bal.movesJoin++
		c.mu.Unlock()
		c.logf("cluster: joiner rebalance moved bucket %d → node %d", mv.bucket, mv.dst)
	}
}

// journalCompactSize triggers a rewrite: past this, the journal is
// mostly superseded records and a fresh snapshot is cheaper to replay.
const journalCompactSize = 4 << 20

// journalFloorsNow snapshots every bucket's released floor and
// high-water mark into one jFloors record, and compacts the journal
// when it has grown past the rewrite threshold.
func (c *Coordinator) journalFloorsNow() {
	if c.jr == nil {
		return
	}
	c.mu.Lock()
	fl := make([]journalFloor, len(c.buckets))
	for b, bm := range c.buckets {
		fl[b] = journalFloor{bucket: b, floor: bm.release(), hi: bm.nextSeq - 1}
	}
	c.mu.Unlock()
	if err := c.journalAppend(jrFloors(fl)); err != nil {
		c.logf("cluster: journal: %v", err)
		return
	}
	c.jmu.Lock()
	size := c.jr.Size()
	c.jmu.Unlock()
	if size > journalCompactSize {
		c.compactJournal()
	}
}

// compactJournal rewrites the journal as one snapshot of the live
// state: epoch, bucket count, roster, shard map, floors.
func (c *Coordinator) compactJournal() {
	c.mu.Lock()
	recs := [][]byte{jrEpoch(c.epoch), jrBuckets(len(c.buckets))}
	for _, n := range c.nodes {
		n.mu.Lock()
		alive := n.alive
		name, addr := n.name, n.addr
		n.mu.Unlock()
		recs = append(recs, jrNode(n.id, name, addr))
		if !alive {
			recs = append(recs, jrDead(n.id))
		}
	}
	fl := make([]journalFloor, len(c.buckets))
	for b, bm := range c.buckets {
		recs = append(recs, jrAssign(b, bm.primary, bm.secondary))
		fl[b] = journalFloor{bucket: b, floor: bm.release(), hi: bm.nextSeq - 1}
	}
	recs = append(recs, jrFloors(fl))
	c.mu.Unlock()
	c.jmu.Lock()
	defer c.jmu.Unlock()
	if err := c.jr.Rewrite(recs); err != nil {
		c.logf("cluster: journal compaction: %v", err)
		return
	}
	c.logf("cluster: journal compacted to %d bytes", c.jr.Size())
}

func dedupInts(in []int) []int {
	seen := map[int]bool{}
	out := in[:0]
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
