package cluster

import "time"

// The skew-driven rebalancing policy (tentpole c). Flux's insight
// (§2.4) is that load balancing and fault tolerance are the same
// mechanism — moving a bucket's state between nodes; PR 7 built the
// mechanism (MoveBucket) and this file is the policy that invokes it.
// Per-bucket routed counters (already maintained for retransmit
// accounting) are differenced once per interval into per-node arrival
// rates; a node whose rate stays above Ratio × the connected-node mean
// for After consecutive intervals is declared hot, and one bucket moves
// off it to the coldest node — the *largest* bucket whose departure
// still leaves the hot node hotter than it makes the destination, so a
// single inherently-hot key (one bucket carrying the whole skew) sheds
// its neighbors instead of ping-ponging itself. A Cooldown of quiet
// intervals follows every move and the streak resets, so the policy
// can never flap: a uniform workload never triggers it at all, and a
// skewed one moves at most one bucket per cooldown window.

// BalanceConfig tunes the skew balancer. Zero values take defaults.
type BalanceConfig struct {
	// Disabled turns the policy off (manual MoveBucket still works).
	Disabled bool
	// Interval is how often rates are measured (default 10 heartbeats).
	Interval time.Duration
	// Ratio is the hot threshold: a node is hot when its interval rate
	// exceeds Ratio × the mean rate of connected nodes (default 1.5).
	Ratio float64
	// After is how many consecutive hot intervals arm a move (default
	// 3) — transient bursts never trigger state movement.
	After int
	// Cooldown is how many intervals after a move the policy holds
	// still, letting the new placement's rates settle (default 5).
	Cooldown int
	// MinRate is the minimum per-interval arrival rate on the hot node
	// for the policy to act (default 256): idle clusters never move.
	MinRate int64
}

func (b BalanceConfig) withDefaults(hb time.Duration) BalanceConfig {
	if b.Interval <= 0 {
		b.Interval = 10 * hb
	}
	if b.Ratio <= 1 {
		b.Ratio = 1.5
	}
	if b.After <= 0 {
		b.After = 3
	}
	if b.Cooldown <= 0 {
		b.Cooldown = 5
	}
	if b.MinRate <= 0 {
		b.MinRate = 256
	}
	return b
}

// balancer is the policy state (guarded by Coordinator.mu except where
// noted; balanceTick is only called from the healer goroutine).
type balancer struct {
	cfg      BalanceConfig
	lastRun  time.Time
	prev     []int64 // previous routed snapshot per bucket
	hotNode  int     // node hot last interval (-1 none)
	streak   int     // consecutive intervals hotNode stayed hot
	cooldown int     // intervals to hold still after a move

	checks    int64
	movesSkew int64
	movesJoin int64
	skips     int64
}

func (b *balancer) init(cfg BalanceConfig, hb time.Duration, buckets int) {
	b.cfg = cfg.withDefaults(hb)
	b.prev = make([]int64, buckets)
	b.hotNode = -1
	b.lastRun = time.Now()
}

// balanceTick runs the policy once per Interval (called every healer
// pass; cheap no-op between intervals). A decided move executes outside
// c.mu through the ordinary MoveBucket handoff.
func (c *Coordinator) balanceTick() {
	c.mu.Lock()
	b := &c.bal
	if b.cfg.Disabled || time.Since(b.lastRun) < b.cfg.Interval {
		c.mu.Unlock()
		return
	}
	b.lastRun = time.Now()
	b.checks++

	// Difference the per-bucket routed counters into this interval's
	// per-bucket and per-node rates.
	delta := make([]int64, len(c.buckets))
	rate := map[int]int64{} // node → interval arrivals
	var conn []int
	for _, n := range c.nodes {
		if c.nodeConnectedLocked(n.id) {
			conn = append(conn, n.id)
			rate[n.id] = 0
		}
	}
	for i, bm := range c.buckets {
		delta[i] = bm.routed - b.prev[i]
		b.prev[i] = bm.routed
		if bm.primary >= 0 {
			if _, ok := rate[bm.primary]; ok {
				rate[bm.primary] += delta[i]
			}
		}
	}
	if len(conn) < 2 {
		b.hotNode, b.streak = -1, 0
		c.mu.Unlock()
		return
	}
	if b.cooldown > 0 {
		b.cooldown--
		b.skips++
		c.mu.Unlock()
		return
	}

	var total int64
	hot, cold := conn[0], conn[0]
	for _, id := range conn {
		total += rate[id]
		if rate[id] > rate[hot] {
			hot = id
		}
		if rate[id] < rate[cold] {
			cold = id
		}
	}
	mean := float64(total) / float64(len(conn))
	isHot := rate[hot] >= b.cfg.MinRate && float64(rate[hot]) > b.cfg.Ratio*mean
	if !isHot {
		b.hotNode, b.streak = -1, 0
		c.mu.Unlock()
		return
	}
	if hot != b.hotNode {
		b.hotNode, b.streak = hot, 1 // hysteresis restarts on a new culprit
		b.skips++
		c.mu.Unlock()
		return
	}
	b.streak++
	if b.streak < b.cfg.After {
		b.skips++
		c.mu.Unlock()
		return
	}

	// Armed: pick the largest bucket on the hot node whose departure is
	// a strict improvement (the destination must stay below the donor),
	// so relocating a single inherently-hot bucket to a quieter node —
	// which would just move the hotspot — is never chosen.
	best, bestRate := -1, int64(-1)
	for i, bm := range c.buckets {
		if bm.primary != hot || bm.paused {
			continue
		}
		if rate[cold]+delta[i] >= rate[hot]-delta[i] {
			continue
		}
		if delta[i] > bestRate {
			best, bestRate = i, delta[i]
		}
	}
	if best < 0 {
		b.skips++
		b.streak = 0 // nothing movable helps; re-observe from scratch
		c.mu.Unlock()
		return
	}
	b.streak = 0
	b.cooldown = b.cfg.Cooldown
	b.hotNode = -1
	c.mu.Unlock()

	if err := c.MoveBucket(best, cold); err != nil {
		c.logf("cluster: skew rebalance bucket %d → node %d: %v", best, cold, err)
		return
	}
	c.mu.Lock()
	c.bal.movesSkew++
	c.mu.Unlock()
	c.logf("cluster: skew rebalance moved bucket %d (rate %d) off node %d → node %d", best, bestRate, hot, cold)
}
