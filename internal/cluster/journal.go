package cluster

import (
	"encoding/binary"
	"fmt"

	"telegraphcq/internal/storage"
)

// Coordinator journal records. The journal (storage.Journal: framed,
// CRC'd, fsync'd, torn-tail-truncated on recovery) holds everything a
// restarted coordinator needs to resume the cluster without losing one
// acked tuple: the epoch, the bucket count, the node roster, the shard
// map, and periodic floor snapshots. Floors are a *lower bound* — the
// workers are the source of truth above the journaled floor and a
// recovering coordinator reconciles upward from their mFloors reports.
const (
	jEpoch   byte = iota + 1 // varint epoch
	jBuckets                 // uvarint bucket count (written once, first open)
	jNode                    // uvarint id, string name, string addr
	jDead                    // uvarint id (terminal)
	jAssign                  // uvarint bucket, varint primary, varint secondary
	jFloors                  // uvarint count, then per bucket: uvarint bucket, varint floor, varint hi(=nextSeq-1)
)

func jrEpoch(epoch int64) []byte {
	return binary.AppendVarint([]byte{jEpoch}, epoch)
}

func jrBuckets(n int) []byte {
	return binary.AppendUvarint([]byte{jBuckets}, uint64(n))
}

func jrNode(id int, name, addr string) []byte {
	rec := binary.AppendUvarint([]byte{jNode}, uint64(id))
	rec = binary.AppendUvarint(rec, uint64(len(name)))
	rec = append(rec, name...)
	rec = binary.AppendUvarint(rec, uint64(len(addr)))
	return append(rec, addr...)
}

func jrDead(id int) []byte {
	return binary.AppendUvarint([]byte{jDead}, uint64(id))
}

func jrAssign(bucket, primary, secondary int) []byte {
	rec := binary.AppendUvarint([]byte{jAssign}, uint64(bucket))
	rec = binary.AppendVarint(rec, int64(primary))
	return binary.AppendVarint(rec, int64(secondary))
}

// jrFloors snapshots every bucket's released floor and assignment
// high-water mark in one record.
func jrFloors(floors []journalFloor) []byte {
	rec := binary.AppendUvarint([]byte{jFloors}, uint64(len(floors)))
	for _, f := range floors {
		rec = binary.AppendUvarint(rec, uint64(f.bucket))
		rec = binary.AppendVarint(rec, f.floor)
		rec = binary.AppendVarint(rec, f.hi)
	}
	return rec
}

type journalFloor struct {
	bucket int
	floor  int64 // released floor (acked by every responsible replica)
	hi     int64 // highest sequence ever assigned (nextSeq-1)
}

// journalNode is one roster entry recovered from the journal.
type journalNode struct {
	id         int
	name, addr string
	dead       bool
}

// journalState is everything a replayed journal describes.
type journalState struct {
	epoch   int64
	buckets int
	nodes   []journalNode
	assign  map[int][2]int // bucket → {primary, secondary}
	floors  map[int]journalFloor
}

// replayJournal opens (creating) the journal at path and folds its
// records into a journalState snapshot. Later records supersede earlier
// ones (assignments and floors are last-writer-wins), which is what
// makes plain appending on every mutation correct.
func replayJournal(path string) (*storage.Journal, *journalState, error) {
	st := &journalState{assign: map[int][2]int{}, floors: map[int]journalFloor{}}
	byID := map[int]int{} // node id → index in st.nodes
	jr, err := storage.OpenJournal(path, func(rec []byte) error {
		if len(rec) == 0 {
			return fmt.Errorf("empty record")
		}
		d := &decoder{buf: rec[1:]}
		switch rec[0] {
		case jEpoch:
			st.epoch = d.varint()
		case jBuckets:
			st.buckets = int(d.uvarint())
		case jNode:
			id := int(d.uvarint())
			name := string(d.bytes(d.uvarint()))
			addr := string(d.bytes(d.uvarint()))
			if d.err != nil {
				return d.err
			}
			if i, ok := byID[id]; ok {
				st.nodes[i].name, st.nodes[i].addr = name, addr
			} else {
				byID[id] = len(st.nodes)
				st.nodes = append(st.nodes, journalNode{id: id, name: name, addr: addr})
			}
		case jDead:
			id := int(d.uvarint())
			if i, ok := byID[id]; ok {
				st.nodes[i].dead = true
			}
		case jAssign:
			b := int(d.uvarint())
			p := int(d.varint())
			s := int(d.varint())
			if d.err != nil {
				return d.err
			}
			st.assign[b] = [2]int{p, s}
		case jFloors:
			n := d.uvarint()
			for i := uint64(0); i < n && d.err == nil; i++ {
				f := journalFloor{bucket: int(d.uvarint())}
				f.floor = d.varint()
				f.hi = d.varint()
				if d.err == nil {
					st.floors[f.bucket] = f
				}
			}
		default:
			return fmt.Errorf("unknown journal record type %d", rec[0])
		}
		return d.err
	})
	if err != nil {
		return nil, nil, err
	}
	return jr, st, nil
}
