package cluster

import (
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"time"

	"telegraphcq/internal/flux"
	"telegraphcq/internal/storage"
	"telegraphcq/internal/telemetry"
)

// Config sizes a coordinator deployment.
type Config struct {
	// Workers are exchange addresses dialed at Start — the static seed
	// roster. With Listen set this may be empty: workers register
	// themselves at runtime.
	Workers []string
	// Listen is the membership registry address (""= static membership
	// only). Workers dial it, send a JOIN hello, and are admitted into
	// the roster; the coordinator then dials their exchange back.
	Listen string
	// Journal is the path of the coordinator's durable log (""= none).
	// The shard map, node roster, epoch, and per-bucket ack floors
	// journal to it fsync'd; a restarted coordinator replays it and
	// resumes the cluster with zero acked-tuple loss.
	Journal string
	// Buckets is the partitioning granularity (default 8 × workers, or
	// 32 with a dynamic-only roster). A journal's bucket count wins: it
	// must match the floors workers hold.
	Buckets int
	// Heartbeat is the failure-detection interval (default 100ms). A
	// node with a ping unanswered past 1.25 intervals is declared dead,
	// so promotion lands within 2 heartbeat intervals of the last sign
	// of life with margin for probe scheduling.
	Heartbeat time.Duration
	// Replication enables process pairs; defaults to on with ≥ 2 static
	// workers or a dynamic registry.
	Replication *bool
	// DialTimeout bounds worker dials (default one heartbeat).
	DialTimeout time.Duration
	// OrphanGrace is how long an orphaned bucket (no live primary or
	// secondary) waits for its node to rejoin before being restarted
	// empty (default 20 heartbeats). Also the death deadline for
	// journal-recovered nodes that have not reconnected yet.
	OrphanGrace time.Duration
	// Balance tunes the skew-driven rebalancer (see BalanceConfig);
	// zero values take defaults, Balance.Disabled turns the policy off.
	Balance BalanceConfig
	// Logf receives lifecycle events (default log.Printf).
	Logf func(format string, args ...any)
}

// pendEntry is one routed entry retained until both replicas ack it.
type pendEntry struct {
	seq int64
	e   Entry
}

// bucketMeta is the coordinator's routing state for one bucket. All
// fields are guarded by Coordinator.mu.
type bucketMeta struct {
	primary   int // -1 = orphaned (no live owner; healer reassigns)
	secondary int // -1 = unreplicated
	nextSeq   int64
	ackP      int64 // primary's contiguous applied floor
	ackS      int64 // secondary's contiguous applied floor
	ackHi     int64 // highest floor ever credited to the acked counter
	pend      []pendEntry
	paused    bool // mid-state-movement: Route buffers instead of sending
	pauseBuf  []Entry

	routed      int64     // entries ever routed here (balancer rate source)
	orphanSince time.Time // when primary went to -1 (grace clock)
}

// release returns the release cursor contribution of the secondary
// (unreplicated buckets release on the primary ack alone).
func (bm *bucketMeta) release() int64 {
	if bm.secondary < 0 {
		return bm.ackP
	}
	if bm.ackS < bm.ackP {
		return bm.ackS
	}
	return bm.ackP
}

// node is one worker as the coordinator sees it.
type node struct {
	id   int
	name string // stable worker identity (static roster: the address)

	mu       sync.Mutex
	addr     string
	w        *wire // nil while disconnected
	alive    bool  // false once declared dead (terminal)
	dialing  bool
	everConn bool // connected at least once this coordinator incarnation
	lastPong time.Time
	// pingSent is the time of the oldest unanswered ping (zero when the
	// node has answered everything). Death is declared only when an
	// outstanding ping ages past the deadline — never from mere quiet,
	// which can equally mean the monitor itself was stalled behind a
	// blocking send.
	pingSent time.Time

	ctlMu sync.Mutex  // one outstanding control request at a time
	ctl   chan []byte // control replies (mState/mInstalled/mCollectReply)
	proc  int64       // worker-reported processed count (last pong)
}

func (n *node) addrOf() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.addr
}

// Coordinator owns the shard map and routes the partitioned stream.
type Coordinator struct {
	cfg  Config
	repl bool

	epoch int64 // this incarnation's fencing epoch (journal replay + 1)

	jr  *storage.Journal // nil without durability
	jmu sync.Mutex       // serializes journal writes + compaction

	regLn net.Listener // membership registry (nil when Listen == "")

	mu      sync.Mutex
	nodes   []*node // grows under mu; index == node id
	byName  map[string]*node
	buckets []*bucketMeta
	closed  bool
	fenced  bool // a newer coordinator epoch exists; routing refused

	// counters (guarded by mu unless noted)
	routed      int64
	acked       int64 // entries primary-acknowledged
	retransmits int64
	promotions  int64
	moves       int64
	repairs     int64
	bucketsLost int64 // buckets restarted empty (primary died unreplicated)
	sendErrors  int64
	joins       int64         // registry admissions this incarnation
	lastDetect  time.Duration // silence observed when the last death was declared

	bal balancer

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewCoordinator validates the config, replays the journal when one is
// configured, and prepares the shard map; Start connects and begins
// heartbeating.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 && cfg.Listen == "" && cfg.Journal == "" {
		return nil, fmt.Errorf("cluster: coordinator needs workers, a registry address, or a journal")
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 100 * time.Millisecond
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = cfg.Heartbeat
	}
	if cfg.OrphanGrace <= 0 {
		cfg.OrphanGrace = 20 * cfg.Heartbeat
	}
	c := &Coordinator{cfg: cfg, epoch: 1, byName: map[string]*node{}, stop: make(chan struct{})}

	var jst *journalState
	if cfg.Journal != "" {
		jr, st, err := replayJournal(cfg.Journal)
		if err != nil {
			return nil, fmt.Errorf("cluster: journal %s: %w", cfg.Journal, err)
		}
		c.jr = jr
		jst = st
		c.epoch = st.epoch + 1
	}

	recovered := jst != nil && (len(jst.nodes) > 0 || jst.buckets > 0)
	if recovered {
		// The journaled roster supersedes the static worker list: ids
		// must stay stable because the shard map references them.
		sort.Slice(jst.nodes, func(i, k int) bool { return jst.nodes[i].id < jst.nodes[k].id })
		for i, jn := range jst.nodes {
			if jn.id != i {
				c.jr.Close()
				return nil, fmt.Errorf("cluster: journal %s: non-contiguous node id %d", cfg.Journal, jn.id)
			}
			n := &node{id: jn.id, name: jn.name, addr: jn.addr, alive: !jn.dead, ctl: make(chan []byte, 1), lastPong: time.Now()}
			c.nodes = append(c.nodes, n)
			if !jn.dead {
				c.byName[jn.name] = n
			}
		}
		if jst.buckets > 0 {
			cfg.Buckets = jst.buckets
			c.cfg.Buckets = jst.buckets
		}
	} else {
		for i, addr := range cfg.Workers {
			n := &node{id: i, name: addr, addr: addr, alive: true, ctl: make(chan []byte, 1)}
			c.nodes = append(c.nodes, n)
			c.byName[addr] = n
		}
	}

	if cfg.Buckets <= 0 {
		if len(c.nodes) > 0 {
			cfg.Buckets = 8 * len(c.nodes)
		} else {
			cfg.Buckets = 32
		}
		c.cfg.Buckets = cfg.Buckets
	}
	if len(c.nodes) > 0 && cfg.Buckets < len(c.nodes) {
		return nil, fmt.Errorf("cluster: %d buckets for %d workers", cfg.Buckets, len(c.nodes))
	}

	c.repl = len(cfg.Workers) >= 2 || cfg.Listen != "" || (recovered && len(c.nodes) >= 2)
	if cfg.Replication != nil {
		c.repl = *cfg.Replication
	}
	if c.repl && cfg.Listen == "" && len(c.nodes) < 2 {
		return nil, fmt.Errorf("cluster: replication needs ≥ 2 workers")
	}

	liveSeed := c.liveNodeCountLocked()
	for b := 0; b < cfg.Buckets; b++ {
		bm := &bucketMeta{primary: -1, secondary: -1, nextSeq: 1}
		if recovered {
			if as, ok := jst.assign[b]; ok {
				bm.primary, bm.secondary = as[0], as[1]
				if !c.nodeLiveLocked(bm.primary) {
					bm.primary = -1
				}
				if !c.nodeLiveLocked(bm.secondary) {
					bm.secondary = -1
				}
			}
			if fl, ok := jst.floors[b]; ok {
				// The journaled floor is a lower bound; workers raise it
				// through their mFloors reports at reconnect. ackHi starts
				// at the floor so pre-restart acks are not re-credited.
				bm.ackP, bm.ackS, bm.ackHi = fl.floor, fl.floor, fl.floor
				bm.nextSeq = fl.hi + 1
			}
		} else if liveSeed > 0 {
			bm.primary = b % liveSeed
			if c.repl && liveSeed >= 2 {
				bm.secondary = (b + 1) % liveSeed
			}
		}
		if bm.primary < 0 {
			bm.orphanSince = time.Now()
		}
		c.buckets = append(c.buckets, bm)
	}
	c.bal.init(cfg.Balance, cfg.Heartbeat, cfg.Buckets)

	if c.jr != nil {
		// Make this incarnation durable before anything is admitted or
		// routed: the epoch record is what fences every predecessor.
		var recs [][]byte
		recs = append(recs, jrEpoch(c.epoch))
		if !recovered {
			recs = append(recs, jrBuckets(cfg.Buckets))
			for _, n := range c.nodes {
				recs = append(recs, jrNode(n.id, n.name, n.addr))
			}
			for b, bm := range c.buckets {
				if bm.primary >= 0 || bm.secondary >= 0 {
					recs = append(recs, jrAssign(b, bm.primary, bm.secondary))
				}
			}
		}
		if err := c.journalAppend(recs...); err != nil {
			c.jr.Close()
			return nil, fmt.Errorf("cluster: journal %s: %w", cfg.Journal, err)
		}
	}
	return c, nil
}

// liveNodeCountLocked counts not-declared-dead nodes (c.mu or New).
func (c *Coordinator) liveNodeCountLocked() int {
	live := 0
	for _, n := range c.nodes {
		n.mu.Lock()
		if n.alive {
			live++
		}
		n.mu.Unlock()
	}
	return live
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// journalAppend appends records and fsyncs; a nil journal is a no-op.
// Never called with c.mu held: fsync latency must not stall routing.
func (c *Coordinator) journalAppend(recs ...[]byte) error {
	if c.jr == nil || len(recs) == 0 {
		return nil
	}
	c.jmu.Lock()
	defer c.jmu.Unlock()
	for _, r := range recs {
		if err := c.jr.Append(r); err != nil {
			return err
		}
	}
	return c.jr.Sync()
}

// Start dials the known workers, opens the membership registry, and
// starts the failure detector and healer. With a purely static config
// (no registry, no journal) every worker must be up — a cluster that
// begins degraded cannot promise process pairs; recovered or dynamic
// rosters connect best-effort and the monitor keeps retrying.
func (c *Coordinator) Start() error {
	strict := c.cfg.Listen == "" && c.jr == nil
	if c.cfg.Listen != "" {
		if _, err := c.listenRegistry(c.cfg.Listen); err != nil {
			c.Close()
			return fmt.Errorf("cluster: registry listen %s: %w", c.cfg.Listen, err)
		}
	}
	for _, n := range c.nodesSnapshot() {
		n.mu.Lock()
		alive := n.alive
		n.mu.Unlock()
		if !alive {
			continue
		}
		if err := c.connect(n); err != nil {
			if strict {
				c.Close()
				return fmt.Errorf("cluster: worker %d (%s): %w", n.id, n.addrOf(), err)
			}
			c.logf("cluster: worker %d (%s) not reachable yet: %v", n.id, n.addrOf(), err)
		}
	}
	c.wg.Add(2)
	go c.monitor()
	go c.healer()
	return nil
}

// nodesSnapshot copies the roster slice (the nodes themselves are
// shared; their fields have their own lock).
func (c *Coordinator) nodesSnapshot() []*node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*node(nil), c.nodes...)
}

// nodeByID resolves an id against the growing roster.
func (c *Coordinator) nodeByID(id int) *node {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.nodes) {
		return nil
	}
	return c.nodes[id]
}

// connect dials one worker, sends the hello, and starts its reader.
func (c *Coordinator) connect(n *node) error {
	conn, err := net.DialTimeout("tcp", n.addrOf(), c.cfg.DialTimeout)
	if err != nil {
		return err
	}
	w := newWire(conn)
	if err := w.writeFrame(appendHello(nil, n.id, c.epoch, c.cfg.Heartbeat.Milliseconds())); err != nil {
		w.close()
		return err
	}
	n.mu.Lock()
	if old := n.w; old != nil {
		old.close() // one exchange connection per node
	}
	n.w = w
	n.alive = true
	n.everConn = true
	n.lastPong = time.Now()
	n.pingSent = time.Time{}
	n.mu.Unlock()
	c.wg.Add(1)
	go c.readLoop(n, w)
	return nil
}

// wireOf returns the node's current connection (nil when disconnected
// or dead).
func (n *node) wireOf() *wire {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return nil
	}
	return n.w
}

// readLoop drains one worker connection: acks and pongs are folded into
// coordinator state, floor reports reconciled, control replies handed
// to the waiting requester.
func (c *Coordinator) readLoop(n *node, w *wire) {
	defer c.wg.Done()
	for {
		payload, err := w.readFrame()
		if err != nil {
			n.mu.Lock()
			if n.w == w {
				n.w = nil // monitor reconnects or declares death
			}
			n.mu.Unlock()
			w.close()
			return
		}
		// Any frame proves the node is alive — acks clear the ping clock
		// just like pongs, so a worker busy draining a data backlog is
		// never mistaken for a silent one.
		n.mu.Lock()
		n.lastPong = time.Now()
		n.pingSent = time.Time{}
		n.mu.Unlock()
		d := &decoder{buf: payload[1:]}
		switch payload[0] {
		case mAck:
			bucket := int(d.uvarint())
			upTo := d.varint()
			if d.err == nil {
				c.onAck(n.id, bucket, upTo)
			}
		case mAckBatch:
			floors := decodeFloorPairs(d)
			if d.err == nil {
				for bucket, upTo := range floors {
					c.onAck(n.id, bucket, upTo)
				}
			}
		case mFloors:
			floors := decodeFloorPairs(d)
			if d.err == nil {
				c.reconcileFloors(n, floors)
			}
		case mPong:
			proc := d.varint()
			if d.err == nil {
				n.mu.Lock()
				n.proc = proc
				n.mu.Unlock()
			}
		case mState, mInstalled, mCollectReply:
			select {
			case n.ctl <- payload:
			default: // stale reply from a timed-out request: drop
			}
		}
	}
}

// onAck advances a bucket's replica cursors and releases fully
// replicated entries.
func (c *Coordinator) onAck(nodeID, bucket int, upTo int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if bucket < 0 || bucket >= len(c.buckets) {
		return
	}
	bm := c.buckets[bucket]
	switch nodeID {
	case bm.primary:
		if upTo > bm.ackP {
			bm.ackP = upTo
		}
		// Credit against the high-water mark, not ackP: a promotion can
		// move ackP backwards (new primary behind the old one), and the
		// re-acked range must not be counted twice.
		if upTo > bm.ackHi {
			c.acked += upTo - bm.ackHi
			bm.ackHi = upTo
		}
	case bm.secondary:
		if upTo > bm.ackS {
			bm.ackS = upTo
		}
	default:
		return // stale ack from a node no longer serving this bucket
	}
	rel := bm.release()
	i := 0
	for i < len(bm.pend) && bm.pend[i].seq <= rel {
		i++
	}
	if i > 0 {
		bm.pend = append(bm.pend[:0], bm.pend[i:]...)
	}
}

// Route partitions one observation and delivers it to the bucket's
// process pair. The entry is retained until both replicas acknowledge
// it; a worker that misses it (connection drop, failover) gets it again
// from the retransmit path, and the per-bucket sequence makes the retry
// idempotent. An orphaned bucket (no live owner yet) pends without
// sending; the healer's reassignment retransmits.
func (c *Coordinator) Route(key string, val float64) error {
	b := flux.BucketOf(key, len(c.buckets))
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("cluster: coordinator closed")
	}
	if c.fenced {
		c.mu.Unlock()
		return fmt.Errorf("cluster: coordinator fenced by a newer epoch")
	}
	bm := c.buckets[b]
	c.routed++
	bm.routed++
	if bm.paused {
		bm.pauseBuf = append(bm.pauseBuf, Entry{Key: key, Val: val})
		c.mu.Unlock()
		return nil
	}
	seq := bm.nextSeq
	bm.nextSeq++
	bm.pend = append(bm.pend, pendEntry{seq: seq, e: Entry{Key: key, Val: val}})
	p, s := bm.primary, bm.secondary
	c.mu.Unlock()

	frame := appendData(nil, b, seq, []Entry{{Key: key, Val: val}})
	c.sendTo(p, frame)
	if s >= 0 {
		c.sendTo(s, frame) // same bytes: encoded once for the pair
	}
	return nil
}

// sendTo writes one frame to a node if it is connected; a missing or
// failing connection is not an error here — the entry stays pending and
// the monitor's reconnect/promotion path retransmits it.
func (c *Coordinator) sendTo(nodeID int, frame []byte) {
	n := c.nodeByID(nodeID)
	if n == nil {
		return
	}
	w := n.wireOf()
	if w == nil {
		return
	}
	if err := w.writeFrame(frame); err != nil {
		c.mu.Lock()
		c.sendErrors++
		c.mu.Unlock()
		n.mu.Lock()
		if n.w == w {
			n.w = nil
		}
		n.mu.Unlock()
		w.close()
	}
}

// retransmit resends every pending entry the node is responsible for
// (primary or secondary) — the at-least-once catch-up after a reconnect
// or a promotion. Worker-side dedup absorbs any overlap.
func (c *Coordinator) retransmit(nodeID int) {
	type batch struct {
		bucket  int
		baseSeq int64
		entries []Entry
	}
	var batches []batch
	c.mu.Lock()
	for b, bm := range c.buckets {
		var floor int64
		switch nodeID {
		case bm.primary:
			floor = bm.ackP
		case bm.secondary:
			floor = bm.ackS
		default:
			continue
		}
		var entries []Entry
		var base int64 = -1
		for _, pe := range bm.pend {
			if pe.seq <= floor {
				continue
			}
			if base < 0 {
				base = pe.seq
			}
			entries = append(entries, pe.e)
		}
		if base >= 0 {
			batches = append(batches, batch{bucket: b, baseSeq: base, entries: entries})
			c.retransmits += int64(len(entries))
		}
	}
	c.mu.Unlock()
	for _, bt := range batches {
		c.sendTo(nodeID, appendData(nil, bt.bucket, bt.baseSeq, bt.entries))
	}
}

// ------------------------------------------------------------- detector

// monitor is the failure detector and repair loop: it pings workers,
// reconnects dropped connections, declares nodes that stay silent past
// the deadline dead, and restores replication afterwards.
func (c *Coordinator) monitor() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.Heartbeat / 8)
	defer tick.Stop()
	deadline := c.cfg.Heartbeat + c.cfg.Heartbeat/4
	ping := appendPing(nil)
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		for _, n := range c.nodesSnapshot() {
			n.mu.Lock()
			alive, w, dialing := n.alive, n.w, n.dialing
			outstanding, silence := n.pingSent, time.Since(n.lastPong)
			everConn := n.everConn
			n.mu.Unlock()
			if !alive {
				continue
			}
			// A journal-recovered node that has not reconnected this
			// incarnation gets the longer orphan grace before being
			// declared dead: its worker may be mid-re-registration.
			dl := deadline
			if !everConn {
				dl = c.cfg.OrphanGrace
			}
			if !outstanding.IsZero() && time.Since(outstanding) > dl {
				c.declareDead(n, silence)
				continue
			}
			if w == nil {
				// Disconnected: the reconnect attempt doubles as the
				// probe, so start the death clock now.
				n.mu.Lock()
				if n.pingSent.IsZero() {
					n.pingSent = time.Now()
				}
				n.mu.Unlock()
				if !dialing {
					n.mu.Lock()
					n.dialing = true
					n.mu.Unlock()
					c.wg.Add(1)
					go func(n *node) {
						defer c.wg.Done()
						err := c.connect(n)
						n.mu.Lock()
						n.dialing = false
						n.mu.Unlock()
						if err == nil {
							c.retransmit(n.id)
						}
					}(n)
				}
				continue
			}
			n.mu.Lock()
			if n.pingSent.IsZero() {
				n.pingSent = time.Now()
			}
			n.mu.Unlock()
			c.sendTo(n.id, ping)
		}
	}
}

// declareDead is the promotion path: every bucket the dead node ran as
// primary fails over to its secondary without losing one acked entry;
// buckets that lose their secondary are noted for repair. Replication
// is then restored by state movement onto surviving nodes.
func (c *Coordinator) declareDead(n *node, silence time.Duration) {
	n.mu.Lock()
	if !n.alive {
		n.mu.Unlock()
		return
	}
	n.alive = false
	w := n.w
	n.w = nil
	n.mu.Unlock()
	if w != nil {
		w.close()
	}

	recs := [][]byte{jrDead(n.id)}
	c.mu.Lock()
	if c.byName[n.name] == n {
		delete(c.byName, n.name) // a rejoining same-name worker gets a fresh id
	}
	c.lastDetect = silence
	survivor := -1
	for _, m := range c.nodes {
		m.mu.Lock()
		ok := m.alive
		m.mu.Unlock()
		if ok {
			survivor = m.id
			break
		}
	}
	newPrimaries := map[int]bool{}
	var promoted, lost, toRepair []int
	for b, bm := range c.buckets {
		if bm.primary == n.id {
			if bm.secondary >= 0 && c.nodeLiveLocked(bm.secondary) {
				bm.primary = bm.secondary
				bm.secondary = -1
				// Everything the dead primary acked past the secondary's
				// floor is still pending (entries release only when both
				// acked) and is retransmitted below: zero acked loss.
				// The secondary's floor becomes the primary floor; credit
				// whatever it was ahead by (its acks were never credited
				// as primary acks).
				if bm.ackS > bm.ackHi {
					c.acked += bm.ackS - bm.ackHi
					bm.ackHi = bm.ackS
				}
				bm.ackP = bm.ackS
				c.promotions++
				promoted = append(promoted, b)
				newPrimaries[bm.primary] = true
			} else if survivor >= 0 {
				// Unreplicated primary death: the state is gone. Restart
				// the bucket empty on a survivor — but keep it paused
				// until the survivor has the dedup floor installed, or
				// its ack floor could never reach the dead sequences.
				bm.primary = survivor
				bm.secondary = -1
				// Force-advance the floor past the discarded entries so
				// barriers terminate; BucketsLost records the damage.
				if d := bm.nextSeq - 1 - bm.ackHi; d > 0 {
					c.acked += d
					bm.ackHi = bm.nextSeq - 1
				}
				bm.ackP = bm.nextSeq - 1
				bm.ackS = bm.ackP
				bm.pend = bm.pend[:0]
				if !bm.paused {
					bm.paused = true
				}
				c.bucketsLost++
				lost = append(lost, b)
			} else {
				// No survivor at all: orphan the bucket; the healer
				// reassigns when a node (re)joins.
				bm.primary = -1
				bm.secondary = -1
				bm.orphanSince = time.Now()
			}
			recs = append(recs, jrAssign(b, bm.primary, bm.secondary))
			toRepair = append(toRepair, b)
		} else if bm.secondary == n.id {
			bm.secondary = -1
			recs = append(recs, jrAssign(b, bm.primary, bm.secondary))
			toRepair = append(toRepair, b)
		}
	}
	c.mu.Unlock()
	if err := c.journalAppend(recs...); err != nil {
		c.logf("cluster: journal: %v", err)
	}
	c.logf("cluster: worker %d (%s) declared dead after %v silence: %d promotions, %d buckets lost, %d to repair",
		n.id, n.addrOf(), silence.Round(time.Millisecond), len(promoted), len(lost), len(toRepair))
	if survivor < 0 {
		c.logf("cluster: no surviving workers; buckets orphaned until a join")
		return
	}
	// Catch-up and repair run off the monitor goroutine: their sends can
	// block on a backlogged peer, and a stalled monitor stops probing.
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		// Catch each promoted primary up (retransmit covers every bucket
		// a node serves in one pass), then restore process pairs.
		for p := range newPrimaries {
			c.retransmit(p)
		}
		for _, b := range lost {
			if err := c.reinitLost(b); err != nil {
				c.logf("cluster: reinit bucket %d: %v", b, err)
			}
		}
		if !c.repl {
			return
		}
		for _, b := range toRepair {
			if err := c.repairReplication(b); err != nil {
				c.logf("cluster: repair bucket %d: %v", b, err)
			}
		}
	}()
}

// reinitLost installs an empty state and the current dedup floor on a
// lost bucket's replacement primary, then reopens the bucket (it was
// paused in declareDead).
func (c *Coordinator) reinitLost(bucket int) error {
	defer c.resume(bucket)
	c.mu.Lock()
	bm := c.buckets[bucket]
	p, floor := bm.primary, bm.nextSeq-1 // frozen: the bucket is paused
	c.mu.Unlock()
	_, err := c.ctlRequest(p, appendState(nil, mInstall, bucket, floor, flux.BucketState{}), mInstalled, c.moveTimeout())
	return err
}

// nodeLiveLocked reports liveness; requires c.mu (roster access).
func (c *Coordinator) nodeLiveLocked(id int) bool {
	if id < 0 || id >= len(c.nodes) {
		return false
	}
	n := c.nodes[id]
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive
}

func (c *Coordinator) nodeAlive(id int) bool {
	n := c.nodeByID(id)
	if n == nil {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive
}

// nodeConnectedLocked reports a live, currently-connected node
// (requires c.mu).
func (c *Coordinator) nodeConnectedLocked(id int) bool {
	if id < 0 || id >= len(c.nodes) {
		return false
	}
	n := c.nodes[id]
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive && n.w != nil
}

// ------------------------------------------------------- state movement

// pause marks a bucket mid-movement so Route buffers its arrivals.
func (c *Coordinator) pause(bucket int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	bm := c.buckets[bucket]
	if bm.paused {
		return fmt.Errorf("cluster: bucket %d already moving", bucket)
	}
	bm.paused = true
	return nil
}

// resume reopens a paused bucket and drains its pause buffer through
// the normal routing path.
func (c *Coordinator) resume(bucket int) {
	c.mu.Lock()
	bm := c.buckets[bucket]
	buf := bm.pauseBuf
	bm.pauseBuf = nil
	bm.paused = false
	var frames [][]byte
	p, s := bm.primary, bm.secondary
	for _, e := range buf {
		seq := bm.nextSeq
		bm.nextSeq++
		bm.pend = append(bm.pend, pendEntry{seq: seq, e: e})
		frames = append(frames, appendData(nil, bucket, seq, []Entry{e}))
	}
	c.mu.Unlock()
	for _, f := range frames {
		c.sendTo(p, f)
		if s >= 0 {
			c.sendTo(s, f)
		}
	}
}

// quiesce waits until every assigned entry of the bucket has been
// acknowledged by its primary (the bucket must be paused, so the set of
// assigned entries is frozen). State fetched afterwards covers exactly
// the assigned prefix — the precondition for movable state. Aborts
// promptly when the coordinator is closing: the caller's deferred
// resume is what guarantees no bucket is ever left paused.
func (c *Coordinator) quiesce(bucket int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		select {
		case <-c.stop:
			return fmt.Errorf("cluster: coordinator closing")
		default:
		}
		c.mu.Lock()
		bm := c.buckets[bucket]
		done := bm.ackP == bm.nextSeq-1
		c.mu.Unlock()
		if done {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: bucket %d did not quiesce in %v", bucket, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// ctlRequest sends one control frame to a node and waits for its reply.
func (c *Coordinator) ctlRequest(nodeID int, req []byte, want byte, timeout time.Duration) (*decoder, error) {
	n := c.nodeByID(nodeID)
	if n == nil {
		return nil, fmt.Errorf("cluster: no worker %d", nodeID)
	}
	n.ctlMu.Lock()
	defer n.ctlMu.Unlock()
	// Drain a stale reply from an earlier timed-out request.
	select {
	case <-n.ctl:
	default:
	}
	w := n.wireOf()
	if w == nil {
		return nil, fmt.Errorf("cluster: worker %d not connected", nodeID)
	}
	if err := w.writeFrame(req); err != nil {
		return nil, err
	}
	select {
	case payload := <-n.ctl:
		if payload[0] != want {
			return nil, fmt.Errorf("cluster: worker %d replied %d, want %d", nodeID, payload[0], want)
		}
		return &decoder{buf: payload[1:]}, nil
	case <-c.stop:
		return nil, fmt.Errorf("cluster: coordinator closing")
	case <-time.After(timeout):
		return nil, fmt.Errorf("cluster: worker %d control timeout", nodeID)
	}
}

// moveTimeout bounds each state-movement step.
func (c *Coordinator) moveTimeout() time.Duration { return 20 * c.cfg.Heartbeat }

// repairReplication restores a bucket's process pair after a death:
// pause → quiesce → clone the primary's state → install it (with the
// dedup floor) on the least-loaded survivor → resume. The same
// mechanism Flux uses for load balancing, reused for replica repair.
func (c *Coordinator) repairReplication(bucket int) error {
	c.mu.Lock()
	bm := c.buckets[bucket]
	if bm.secondary >= 0 || bm.paused || bm.primary < 0 {
		c.mu.Unlock()
		return nil
	}
	p := bm.primary
	c.mu.Unlock()
	dst := c.leastLoaded(p)
	if dst < 0 {
		return fmt.Errorf("no survivor to replicate onto")
	}
	if err := c.pause(bucket); err != nil {
		return err
	}
	defer c.resume(bucket)
	if err := c.quiesce(bucket, c.moveTimeout()); err != nil {
		return err
	}
	d, err := c.ctlRequest(p, appendFetch(nil, bucket, false), mState, c.moveTimeout())
	if err != nil {
		return err
	}
	_ = d.uvarint() // bucket echo
	floor := d.varint()
	st := d.state()
	if d.err != nil {
		return d.err
	}
	if _, err := c.ctlRequest(dst, appendState(nil, mInstall, bucket, floor, st), mInstalled, c.moveTimeout()); err != nil {
		return err
	}
	c.mu.Lock()
	bm.secondary = dst
	bm.ackS = floor
	c.repairs++
	p2, s2 := bm.primary, bm.secondary
	c.mu.Unlock()
	if err := c.journalAppend(jrAssign(bucket, p2, s2)); err != nil {
		c.logf("cluster: journal: %v", err)
	}
	return nil
}

// leastLoaded picks the live connected node (≠ exclude) holding the
// fewest buckets.
func (c *Coordinator) leastLoaded(exclude int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leastLoadedLocked(exclude)
}

func (c *Coordinator) leastLoadedLocked(exclude int) int {
	load := make([]int, len(c.nodes))
	for _, bm := range c.buckets {
		if bm.primary >= 0 && bm.primary < len(load) {
			load[bm.primary]++
		}
		if bm.secondary >= 0 && bm.secondary < len(load) {
			load[bm.secondary]++
		}
	}
	best := -1
	for _, n := range c.nodes {
		if n.id == exclude || !c.nodeConnectedLocked(n.id) {
			continue
		}
		if best < 0 || load[n.id] < load[best] {
			best = n.id
		}
	}
	return best
}

// MoveBucket hands one bucket's primary role to dst — the load-
// balancing path (skew): pause → quiesce → fetch-and-drop from the old
// primary → install on dst → reroute → resume. The deferred resume
// guarantees the bucket is never left paused, including when Close
// aborts the move mid-flight.
func (c *Coordinator) MoveBucket(bucket, dst int) error {
	if bucket < 0 || bucket >= len(c.buckets) {
		return fmt.Errorf("cluster: no bucket %d", bucket)
	}
	if !c.nodeAlive(dst) {
		return fmt.Errorf("cluster: destination %d not alive", dst)
	}
	c.mu.Lock()
	bm := c.buckets[bucket]
	src := bm.primary
	sec := bm.secondary
	c.mu.Unlock()
	if src == dst {
		return nil
	}
	if src < 0 {
		return fmt.Errorf("cluster: bucket %d is orphaned", bucket)
	}
	if err := c.pause(bucket); err != nil {
		return err
	}
	defer c.resume(bucket)
	if err := c.quiesce(bucket, c.moveTimeout()); err != nil {
		return err
	}
	d, err := c.ctlRequest(src, appendFetch(nil, bucket, true), mState, c.moveTimeout())
	if err != nil {
		return err
	}
	_ = d.uvarint()
	floor := d.varint()
	st := d.state()
	if d.err != nil {
		return d.err
	}
	if _, err := c.ctlRequest(dst, appendState(nil, mInstall, bucket, floor, st), mInstalled, c.moveTimeout()); err != nil {
		// The old primary already dropped its copy (fetch-and-drop), so a
		// failed install must not strand the bucket stateless: put the
		// state back on the source, or demote the bucket to orphan so the
		// healer promotes the quiesced secondary (everything it might lack
		// is still pending and retransmits on promotion).
		if _, err2 := c.ctlRequest(src, appendState(nil, mInstall, bucket, floor, st), mInstalled, c.moveTimeout()); err2 != nil {
			c.mu.Lock()
			bm.primary = -1
			bm.orphanSince = time.Now()
			p2, s2 := bm.primary, bm.secondary
			c.mu.Unlock()
			if jerr := c.journalAppend(jrAssign(bucket, p2, s2)); jerr != nil {
				c.logf("cluster: journal: %v", jerr)
			}
			c.logf("cluster: move bucket %d: install failed on both %d and %d; orphaned for healing", bucket, dst, src)
		}
		return err
	}
	c.mu.Lock()
	bm.primary = dst
	bm.ackP = floor
	if sec == dst {
		// Keep primary and secondary distinct: the old primary becomes
		// the secondary (it no longer holds state; the floor keeps dedup
		// honest and repair will re-clone if it ever lags).
		bm.secondary = src
		bm.ackS = floor
	}
	c.moves++
	p2, s2 := bm.primary, bm.secondary
	c.mu.Unlock()
	if err := c.journalAppend(jrAssign(bucket, p2, s2)); err != nil {
		c.logf("cluster: journal: %v", err)
	}
	if sec == dst {
		// Re-install the moved state on the new secondary (the old
		// primary dropped its copy in the fetch). On failure, demote the
		// secondary rather than trusting a stateless replica; the healer
		// re-clones a fresh pair.
		if _, err := c.ctlRequest(src, appendState(nil, mInstall, bucket, floor, st), mInstalled, c.moveTimeout()); err != nil {
			c.mu.Lock()
			bm.secondary = -1
			p2, s2 := bm.primary, bm.secondary
			c.mu.Unlock()
			if jerr := c.journalAppend(jrAssign(bucket, p2, s2)); jerr != nil {
				c.logf("cluster: journal: %v", jerr)
			}
			return err
		}
	}
	return nil
}

// --------------------------------------------------------------- egress

// Barrier waits until every routed entry has been acknowledged by its
// bucket's primary.
func (c *Coordinator) Barrier(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return fmt.Errorf("cluster: coordinator closed")
		}
		if c.fenced {
			c.mu.Unlock()
			return fmt.Errorf("cluster: coordinator fenced by a newer epoch")
		}
		done := true
		for _, bm := range c.buckets {
			if bm.paused || len(bm.pauseBuf) > 0 || bm.ackP != bm.nextSeq-1 {
				done = false
				break
			}
		}
		c.mu.Unlock()
		if done {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: barrier timeout after %v", timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// Collect barriers, then merges every bucket's primary state into the
// final grouped result. Orphaned buckets hold no data after a
// successful barrier (nothing was ever assigned to them) and are
// skipped.
func (c *Coordinator) Collect(timeout time.Duration) (flux.BucketState, error) {
	if err := c.Barrier(timeout); err != nil {
		return nil, err
	}
	c.mu.Lock()
	byNode := map[int][]int{}
	for b, bm := range c.buckets {
		if bm.primary >= 0 {
			byNode[bm.primary] = append(byNode[bm.primary], b)
		}
	}
	c.mu.Unlock()
	out := flux.BucketState{}
	ids := make([]int, 0, len(byNode))
	for id := range byNode {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		d, err := c.ctlRequest(id, appendCollect(nil, byNode[id]), mCollectReply, c.moveTimeout())
		if err != nil {
			return nil, err
		}
		_ = d.uvarint()
		_ = d.varint()
		st := d.state()
		if d.err != nil {
			return nil, d.err
		}
		out.Merge(st)
	}
	return out, nil
}

// ---------------------------------------------------------------- stats

// Stats are the coordinator's robustness counters.
type Stats struct {
	Routed      int64
	Acked       int64 // entries acknowledged by their bucket's primary
	Retransmits int64
	Promotions  int64
	Moves       int64
	Repairs     int64
	BucketsLost int64
	SendErrors  int64
	Joins       int64 // registry admissions this incarnation
	Epoch       int64
	// Rebalance policy counters: how often the balancer looked, moved
	// (for skew, or to fill a joiner), or held back (hysteresis,
	// cooldown, no beneficial candidate).
	RebalanceChecks    int64
	RebalanceMovesSkew int64
	RebalanceMovesJoin int64
	RebalanceSkips     int64
	// LastDetect is the silence observed when the most recent death was
	// declared — the detection latency the heartbeat deadline bounds.
	LastDetect time.Duration
}

// Stats snapshots the counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Routed: c.routed, Acked: c.acked, Retransmits: c.retransmits,
		Promotions: c.promotions, Moves: c.moves, Repairs: c.repairs,
		BucketsLost: c.bucketsLost, SendErrors: c.sendErrors,
		Joins: c.joins, Epoch: c.epoch,
		RebalanceChecks:    c.bal.checks,
		RebalanceMovesSkew: c.bal.movesSkew,
		RebalanceMovesJoin: c.bal.movesJoin,
		RebalanceSkips:     c.bal.skips,
		LastDetect:         c.lastDetect,
	}
}

// Epoch returns this incarnation's fencing epoch.
func (c *Coordinator) Epoch() int64 { return c.epoch }

// Fenced reports whether a newer coordinator epoch has fenced this one.
func (c *Coordinator) Fenced() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fenced
}

// NodeState is one worker's health as the coordinator sees it, reported
// into the tcq_cluster system stream and /metrics.
type NodeState struct {
	ID          int
	Name        string
	Addr        string
	State       string // "up", "disconnected", "dead"
	Primaries   int
	Secondaries int
	Processed   int64
	PongAge     time.Duration
}

// NodeStates snapshots every worker.
func (c *Coordinator) NodeStates() []NodeState {
	c.mu.Lock()
	nodes := append([]*node(nil), c.nodes...)
	prim := make([]int, len(nodes))
	sec := make([]int, len(nodes))
	for _, bm := range c.buckets {
		if bm.primary >= 0 && bm.primary < len(prim) {
			prim[bm.primary]++
		}
		if bm.secondary >= 0 && bm.secondary < len(sec) {
			sec[bm.secondary]++
		}
	}
	c.mu.Unlock()
	out := make([]NodeState, len(nodes))
	for i, n := range nodes {
		n.mu.Lock()
		st := NodeState{
			ID: n.id, Name: n.name, Addr: n.addr, State: "up",
			Primaries: prim[i], Secondaries: sec[i],
			Processed: n.proc, PongAge: time.Since(n.lastPong),
		}
		if !n.alive {
			st.State = "dead"
		} else if n.w == nil {
			st.State = "disconnected"
		}
		n.mu.Unlock()
		out[i] = st
	}
	return out
}

// Register publishes the coordinator's tcq_cluster_* metrics.
func (c *Coordinator) Register(reg *telemetry.Registry) {
	reg.Register(func(emit telemetry.Emit) {
		s := c.Stats()
		counter := func(name, help string, v int64, labels ...telemetry.Label) {
			emit(telemetry.Sample{Name: name, Help: help, Kind: telemetry.KindCounter, Value: float64(v), Labels: labels})
		}
		gauge := func(name, help string, v float64, labels ...telemetry.Label) {
			emit(telemetry.Sample{Name: name, Help: help, Kind: telemetry.KindGauge, Value: v, Labels: labels})
		}
		counter("tcq_cluster_routed_total", "entries routed to process pairs", s.Routed)
		counter("tcq_cluster_acked_total", "entries acknowledged by their bucket's primary", s.Acked)
		counter("tcq_cluster_retransmits_total", "entries resent after reconnects and failovers", s.Retransmits)
		counter("tcq_cluster_promotions_total", "secondaries promoted to primary", s.Promotions)
		counter("tcq_cluster_moves_total", "buckets handed off for load balancing", s.Moves)
		counter("tcq_cluster_repairs_total", "process pairs restored by state movement", s.Repairs)
		counter("tcq_cluster_buckets_lost_total", "buckets restarted empty (unreplicated primary death)", s.BucketsLost)
		counter("tcq_cluster_send_errors_total", "exchange write failures", s.SendErrors)
		counter("tcq_cluster_joins_total", "workers admitted through the membership registry", s.Joins)
		gauge("tcq_cluster_epoch", "coordinator fencing epoch (journal incarnation)", float64(s.Epoch))
		counter("tcq_cluster_rebalance_checks_total", "skew balancer policy evaluations", s.RebalanceChecks)
		counter("tcq_cluster_rebalance_moves_total", "automatic bucket moves (skew policy)", s.RebalanceMovesSkew, telemetry.L("reason", "skew"))
		counter("tcq_cluster_rebalance_moves_total", "automatic bucket moves (joiner fill)", s.RebalanceMovesJoin, telemetry.L("reason", "join"))
		counter("tcq_cluster_rebalance_skips_total", "balancer holds (hysteresis, cooldown, no beneficial move)", s.RebalanceSkips)
		for _, ns := range c.NodeStates() {
			l := telemetry.L("node", fmt.Sprintf("%d", ns.ID))
			up := 0.0
			switch ns.State {
			case "up":
				up = 1
			case "disconnected":
				up = 0.5
			}
			gauge("tcq_cluster_node_up", "worker health (1 up, 0.5 disconnected, 0 dead)", up, l)
			gauge("tcq_cluster_node_primaries", "buckets the worker runs as primary", float64(ns.Primaries), l)
			gauge("tcq_cluster_node_secondaries", "buckets the worker runs as secondary", float64(ns.Secondaries), l)
			counter("tcq_cluster_node_processed_total", "entries the worker reports folded", ns.Processed, l)
		}
	})
}

// Close stops the detector, healer, and registry, severs worker
// connections (worker state is left in place), journals a final floor
// snapshot, and closes the journal. Any in-flight MoveBucket or
// rebalance aborts promptly — its deferred resume reopens the bucket,
// so no bucket is ever left paused.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stop)
	if c.regLn != nil {
		c.regLn.Close()
	}
	for _, n := range c.nodesSnapshot() {
		n.mu.Lock()
		if n.w != nil {
			n.w.close()
			n.w = nil
		}
		n.mu.Unlock()
	}
	c.wg.Wait()
	if c.jr != nil {
		c.journalFloorsNow()
		c.jmu.Lock()
		if err := c.jr.Close(); err != nil {
			c.logf("cluster: journal close: %v", err)
		}
		c.jmu.Unlock()
	}
}
