package cluster

import (
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"telegraphcq/internal/chaos"
	"telegraphcq/internal/flux"
	"telegraphcq/internal/ingress"
)

// Worker runs the partitioned consumer state of one cluster node: a set
// of flux.BucketState partitions behind the framed TCP exchange. It is
// role-agnostic about replication — a worker does not know whether it
// holds a bucket as primary or secondary; the coordinator owns that
// map. All a worker guarantees is the dedup contract: a sequence is
// folded exactly once — arrivals at or below the bucket's contiguous
// applied floor, or already present in its above-floor applied set, are
// skipped (but still acked), so retransmits and out-of-order delivery
// never double-count.
//
// Membership is worker-initiated: StartRegister dials the coordinator's
// registry address under an ingress.Supervisor (exponential backoff +
// jitter), sends a JOIN hello, and re-registers whenever the admitted
// exchange connection drops — so a worker started before its
// coordinator, or surviving a coordinator restart, converges instead of
// dying. Coordinator epochs fence staleness: the worker remembers the
// highest epoch it has been greeted with, refuses exchange connections
// from anything older, and on an epoch bump seals each bucket's dedup
// floor past its above-floor set (a new epoch is a new
// sequence-assignment authority; the old coordinator's unacked gaps
// will never be filled).
type Worker struct {
	// Logf receives node lifecycle events (default log.Printf).
	Logf func(format string, args ...any)

	ln     net.Listener
	wg     sync.WaitGroup
	closed atomic.Bool

	mu        sync.Mutex
	chaos     *chaos.Injector
	conns     map[net.Conn]struct{}
	helloed   map[net.Conn]int64 // exchange conns past hello → coordinator epoch
	id        int                // assigned by the coordinator's hello
	maxEpoch  int64              // highest coordinator epoch ever seen (fence floor)
	buckets   map[int]flux.BucketState
	applied   map[int]int64          // per-bucket contiguous applied floor
	above     map[int]map[int64]bool // applied sequences above the floor (out-of-order arrivals)
	processed int64                  // entries folded (post-dedup)
	deduped   int64                  // entries skipped as already applied
	admits    int64                  // successful registry admissions
	reg       *ingress.Supervisor
}

// NewWorker builds an idle worker; Listen starts serving.
func NewWorker() *Worker {
	return &Worker{
		conns:   map[net.Conn]struct{}{},
		helloed: map[net.Conn]int64{},
		buckets: map[int]flux.BucketState{},
		applied: map[int]int64{},
		above:   map[int]map[int64]bool{},
	}
}

// SetChaos installs (or clears) seeded connection-level fault
// injection — drops, half-open partitions, delayed acks — on every
// exchange connection accepted from now on: the deterministic injector
// the cluster tests use instead of ad-hoc sleeps.
func (w *Worker) SetChaos(in *chaos.Injector) {
	w.mu.Lock()
	w.chaos = in
	w.mu.Unlock()
}

func (w *Worker) chaosInjector() *chaos.Injector {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.chaos
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// Listen binds the exchange port (use ":0" in tests) and serves until
// Close; returns the bound address.
func (w *Worker) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	w.ln = ln
	w.wg.Add(1)
	go w.acceptLoop()
	return ln.Addr().String(), nil
}

func (w *Worker) acceptLoop() {
	defer w.wg.Done()
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			return
		}
		wrapped := chaos.WrapConn(conn, w.chaosInjector())
		w.mu.Lock()
		if w.closed.Load() {
			w.mu.Unlock()
			wrapped.Close()
			return
		}
		w.conns[wrapped] = struct{}{}
		w.mu.Unlock()
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			defer func() {
				w.mu.Lock()
				delete(w.conns, wrapped)
				delete(w.helloed, wrapped)
				w.mu.Unlock()
			}()
			w.serve(wrapped)
		}()
	}
}

// ackBatcher coalesces per-bucket acks on one exchange connection: data
// frames mark buckets dirty, and a flusher paced by the coordinator's
// heartbeat sends one mAckBatch frame carrying every dirty bucket's
// current floor. Pings flush immediately so barrier latency stays at
// the probe cadence, not the flush cadence.
type ackBatcher struct {
	w     *Worker
	wr    *wire
	mu    sync.Mutex
	dirty map[int]bool
	stop  chan struct{}
}

func (w *Worker) newAckBatcher(wr *wire, interval time.Duration) *ackBatcher {
	b := &ackBatcher{w: w, wr: wr, dirty: map[int]bool{}, stop: make(chan struct{})}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-b.stop:
				return
			case <-t.C:
				b.flush()
			}
		}
	}()
	return b
}

func (b *ackBatcher) mark(bucket int) {
	b.mu.Lock()
	b.dirty[bucket] = true
	b.mu.Unlock()
}

// flush sends the coalesced floors for every dirty bucket. Floors are
// read at flush time, after the marking applies completed, so the frame
// always carries each bucket's latest contiguous floor — the value the
// coordinator's release math needs; intermediate floors are skipped,
// which is exactly the coalescing win.
func (b *ackBatcher) flush() {
	b.mu.Lock()
	if len(b.dirty) == 0 {
		b.mu.Unlock()
		return
	}
	buckets := make([]int, 0, len(b.dirty))
	for bk := range b.dirty {
		buckets = append(buckets, bk)
	}
	b.dirty = map[int]bool{}
	b.mu.Unlock()

	floors := make([]int64, len(buckets))
	b.w.mu.Lock()
	for i, bk := range buckets {
		floors[i] = b.w.applied[bk]
	}
	b.w.mu.Unlock()
	// A delayed ack is the classic ambiguous-failure window: the
	// coordinator may retransmit entries the worker already applied; the
	// dedup floor is what keeps the retry harmless. Teardown interrupts
	// the delay — a closing worker must not linger in injected latency.
	if delay := b.w.chaosInjector().DelayAck(); delay > 0 {
		select {
		case <-b.stop:
		case <-time.After(delay):
		}
	}
	if err := b.wr.writeFrame(appendAckBatch(nil, buckets, floors)); err != nil {
		b.wr.close() // wake the serve loop; reconnect retransmits
	}
}

func (b *ackBatcher) close() {
	select {
	case <-b.stop:
	default:
		close(b.stop)
	}
}

// serve handles one coordinator connection. A connection failure is not
// fatal to the worker: state stays, and a reconnecting coordinator
// resumes against the same applied floors.
func (w *Worker) serve(conn net.Conn) {
	wr := newWire(conn)
	defer wr.close()
	var batcher *ackBatcher
	defer func() {
		if batcher != nil {
			batcher.close()
			batcher.flush() // best effort: don't strand floors on teardown
		}
	}()
	var out []byte // reused reply buffer
	for {
		payload, err := wr.readFrame()
		if err != nil {
			return
		}
		d := &decoder{buf: payload[1:]}
		out = out[:0]
		switch payload[0] {
		case mHello:
			id := int(d.uvarint())
			epoch := d.varint()
			hbMs := d.varint()
			if d.err != nil {
				return
			}
			floors, ok := w.greet(conn, id, epoch)
			if !ok {
				w.logf("cluster worker %d: fenced stale coordinator (epoch %d < %d)", id, epoch, w.MaxEpoch())
				return
			}
			hb := time.Duration(hbMs) * time.Millisecond
			if hb <= 0 {
				hb = 100 * time.Millisecond
			}
			if batcher != nil {
				batcher.close()
			}
			batcher = w.newAckBatcher(wr, hb/4)
			w.logf("cluster worker %d: coordinator connected (epoch %d)", id, epoch)
			// First frame back: every floor this worker holds, so a
			// recovering coordinator reconciles against worker truth
			// before routing or moving anything.
			out = appendFloors(out, floors)
		case mData:
			bucket, baseSeq, entries := decodeData(d)
			if d.err != nil {
				return
			}
			w.applyData(bucket, baseSeq, entries)
			if batcher != nil {
				batcher.mark(bucket)
				continue
			}
			// Data before hello (not a path the coordinator takes, but
			// the protocol stays safe): ack inline.
			if delay := w.chaosInjector().DelayAck(); delay > 0 {
				time.Sleep(delay)
			}
			w.mu.Lock()
			floor := w.applied[bucket]
			w.mu.Unlock()
			out = appendAck(out, bucket, floor)
		case mPing:
			if batcher != nil {
				batcher.flush()
			}
			w.mu.Lock()
			processed := w.processed
			w.mu.Unlock()
			out = appendPong(out, processed)
		case mFetch:
			bucket := int(d.uvarint())
			drop := d.byteVal() == 1
			if d.err != nil {
				return
			}
			st, upTo := w.fetchState(bucket, drop)
			out = appendState(out, mState, bucket, upTo, st)
		case mInstall:
			bucket := int(d.uvarint())
			upTo := d.varint()
			st := d.state()
			if d.err != nil {
				return
			}
			w.installState(bucket, upTo, st)
			out = appendInstalled(out, bucket)
		case mCollect:
			n := d.uvarint()
			if d.err != nil || n > maxFrame {
				return
			}
			merged := flux.BucketState{}
			w.mu.Lock()
			for i := uint64(0); i < n; i++ {
				if st := w.buckets[int(d.uvarint())]; st != nil {
					merged.Merge(st)
				}
			}
			w.mu.Unlock()
			if d.err != nil {
				return
			}
			out = appendState(out, mCollectReply, 0, 0, merged)
		default:
			w.logf("cluster worker: unknown message type %d", payload[0])
			return
		}
		if err := wr.writeFrame(out); err != nil {
			return
		}
	}
}

// greet applies a coordinator hello's epoch fencing and returns the
// floors to report. A hello older than the highest epoch seen is
// refused (ok=false → sever the connection: a stale coordinator must
// never route or move buckets). A hello from a *newer* epoch seals
// every bucket: the floor jumps past the above-floor applied set and
// the set clears, because sequence numbers from the old epoch's
// authority will never be completed — the new coordinator starts its
// own assignment above the floors the worker reports here. Connections
// still open from older epochs are severed.
func (w *Worker) greet(conn net.Conn, id int, epoch int64) (map[int]int64, bool) {
	w.mu.Lock()
	if epoch < w.maxEpoch {
		w.mu.Unlock()
		return nil, false
	}
	if epoch > w.maxEpoch {
		sealed := 0
		for b, above := range w.above {
			floor := w.applied[b]
			for seq := range above {
				if seq > floor {
					floor = seq
				}
			}
			if floor != w.applied[b] {
				sealed++
			}
			w.applied[b] = floor
			delete(w.above, b)
		}
		var stale []net.Conn
		for c, e := range w.helloed {
			if e < epoch && c != conn {
				stale = append(stale, c)
			}
		}
		w.maxEpoch = epoch
		if sealed > 0 || len(stale) > 0 {
			w.logf("cluster worker %d: epoch %d sealed %d bucket floors, severing %d stale conns", id, epoch, sealed, len(stale))
		}
		w.mu.Unlock()
		for _, c := range stale {
			c.Close()
		}
		w.mu.Lock()
	}
	w.id = id
	w.helloed[conn] = epoch
	floors := make(map[int]int64, len(w.applied))
	for b, f := range w.applied {
		floors[b] = f
	}
	w.mu.Unlock()
	return floors, true
}

// MaxEpoch returns the highest coordinator epoch this worker has seen.
func (w *Worker) MaxEpoch() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.maxEpoch
}

// connectedAtEpoch reports whether a live exchange connection from a
// coordinator at least as new as epoch exists.
func (w *Worker) connectedAtEpoch(epoch int64) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, e := range w.helloed {
		if e >= epoch {
			return true
		}
	}
	return false
}

// registerDialTimeout bounds one registry dial; admitWait bounds how
// long an admitted worker waits for the coordinator to dial back before
// the attempt is retried under backoff.
const (
	registerDialTimeout = 2 * time.Second
	admitWait           = 10 * time.Second
)

// StartRegister launches the supervised registration loop: dial the
// coordinator's registry address, send JOIN (name, exchange address,
// max epoch seen), wait for ADMIT and the coordinator's exchange
// dial-back, then watch the connection; if it drops, the run returns an
// error and the supervisor re-registers with exponential backoff +
// jitter. Safe to call before the coordinator exists — that is the
// point. Returns the supervisor (exposed for health introspection);
// Close stops it.
func (w *Worker) StartRegister(coordAddr, name string, b ingress.Backoff) *ingress.Supervisor {
	run := func(stop <-chan struct{}) error {
		return w.registerOnce(coordAddr, name, stop)
	}
	sup := ingress.NewSupervisor("cluster-join:"+name, run, b)
	w.mu.Lock()
	w.reg = sup
	w.mu.Unlock()
	sup.Start()
	return sup
}

func (w *Worker) registerOnce(coordAddr, name string, stop <-chan struct{}) error {
	if w.closed.Load() {
		return nil
	}
	conn, err := net.DialTimeout("tcp", coordAddr, registerDialTimeout)
	if err != nil {
		return fmt.Errorf("registry dial %s: %w", coordAddr, err)
	}
	conn.SetDeadline(time.Now().Add(registerDialTimeout + 3*time.Second))
	wr := newWire(conn)
	if err := wr.writeFrame(appendJoin(nil, name, w.Addr(), w.MaxEpoch())); err != nil {
		conn.Close()
		return fmt.Errorf("registry join: %w", err)
	}
	payload, err := wr.readFrame()
	conn.Close()
	if err != nil {
		return fmt.Errorf("registry admit: %w", err)
	}
	if len(payload) == 0 || payload[0] != mAdmit {
		return fmt.Errorf("registry admit: unexpected reply %d", payload[0])
	}
	d := &decoder{buf: payload[1:]}
	id := int(d.uvarint())
	epoch := d.varint()
	if d.err != nil {
		return fmt.Errorf("registry admit: %w", d.err)
	}
	w.mu.Lock()
	w.admits++
	w.mu.Unlock()
	w.logf("cluster worker: admitted as node %d (epoch %d) by %s", id, epoch, coordAddr)

	// Wait for the coordinator's exchange dial-back, then hold until the
	// connection is lost — at which point re-register under backoff.
	deadline := time.Now().Add(admitWait)
	for !w.connectedAtEpoch(epoch) {
		if w.closed.Load() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("admitted by %s but no exchange dial-back", coordAddr)
		}
		select {
		case <-stop:
			return nil
		case <-time.After(20 * time.Millisecond):
		}
	}
	for w.connectedAtEpoch(epoch) {
		if w.closed.Load() {
			return nil
		}
		select {
		case <-stop:
			return nil
		case <-time.After(100 * time.Millisecond):
		}
	}
	return fmt.Errorf("exchange connection to coordinator lost")
}

// applyData folds an entry batch into its bucket exactly once per
// sequence and returns the new contiguous applied floor — the only
// value it is safe to acknowledge. Sequences may arrive out of order
// (concurrent routers, retransmit racing a delayed original), so dedup
// is exact: floor plus the set of applied sequences above it, with the
// floor advanced only across a contiguous prefix.
func (w *Worker) applyData(bucket int, baseSeq int64, entries []Entry) int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := w.buckets[bucket]
	if st == nil {
		st = flux.BucketState{}
		w.buckets[bucket] = st
	}
	floor := w.applied[bucket]
	above := w.above[bucket]
	for i, e := range entries {
		seq := baseSeq + int64(i)
		if seq <= floor || above[seq] {
			w.deduped++
			continue
		}
		st.Fold(e.Key, e.Val)
		w.processed++
		if above == nil {
			above = map[int64]bool{}
			w.above[bucket] = above
		}
		above[seq] = true
	}
	for above[floor+1] {
		delete(above, floor+1)
		floor++
	}
	w.applied[bucket] = floor
	return floor
}

// fetchState snapshots (and with drop, removes) one bucket's state.
func (w *Worker) fetchState(bucket int, drop bool) (flux.BucketState, int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := w.buckets[bucket]
	upTo := w.applied[bucket]
	if st == nil {
		st = flux.BucketState{}
	}
	if drop {
		delete(w.buckets, bucket)
		delete(w.applied, bucket)
		delete(w.above, bucket)
		return st, upTo
	}
	return st.Clone(), upTo
}

// installState replaces a bucket's state and dedup floor (failover
// catch-up and handoff both land here; the moved state supersedes any
// replica the node already held).
func (w *Worker) installState(bucket int, upTo int64, st flux.BucketState) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buckets[bucket] = st
	w.applied[bucket] = upTo
	delete(w.above, bucket) // the installed floor supersedes any gap set
}

// WorkerStats is a worker's observable state (tests, logs, telemetry).
type WorkerStats struct {
	ID        int
	Buckets   int
	Processed int64
	Deduped   int64
	Epoch     int64
	Admits    int64
}

// Stats snapshots the worker.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WorkerStats{
		ID:        w.id,
		Buckets:   len(w.buckets),
		Processed: w.processed,
		Deduped:   w.deduped,
		Epoch:     w.maxEpoch,
		Admits:    w.admits,
	}
}

// Addr returns the bound exchange address ("" before Listen).
func (w *Worker) Addr() string {
	if w.ln == nil {
		return ""
	}
	return w.ln.Addr().String()
}

// Close stops the registration loop and the listener and severs live
// connections. State is kept: a closed worker models a partitioned
// node, not a wiped one.
func (w *Worker) Close() error {
	if !w.closed.CompareAndSwap(false, true) {
		return nil
	}
	w.mu.Lock()
	reg := w.reg
	w.mu.Unlock()
	if reg != nil {
		reg.Stop()
	}
	var err error
	if w.ln != nil {
		err = w.ln.Close()
	}
	// Serve loops block in readFrame; closing the listener does not
	// unblock them, so sever the live connections too.
	w.mu.Lock()
	for c := range w.conns {
		c.Close()
	}
	w.mu.Unlock()
	w.wg.Wait()
	return err
}

// String identifies the worker in logs.
func (w *Worker) String() string {
	return fmt.Sprintf("worker[%d]@%s", w.id, w.Addr())
}
