package cluster

import (
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"telegraphcq/internal/chaos"
	"telegraphcq/internal/flux"
)

// Worker runs the partitioned consumer state of one cluster node: a set
// of flux.BucketState partitions behind the framed TCP exchange. It is
// role-agnostic about replication — a worker does not know whether it
// holds a bucket as primary or secondary; the coordinator owns that
// map. All a worker guarantees is the dedup contract: a sequence is
// folded exactly once — arrivals at or below the bucket's contiguous
// applied floor, or already present in its above-floor applied set, are
// skipped (but still acked), so retransmits and out-of-order delivery
// never double-count.
type Worker struct {
	// Logf receives node lifecycle events (default log.Printf).
	Logf func(format string, args ...any)

	ln     net.Listener
	wg     sync.WaitGroup
	closed atomic.Bool

	mu        sync.Mutex
	chaos     *chaos.Injector
	conns     map[net.Conn]struct{}
	id        int // assigned by the coordinator's hello
	buckets   map[int]flux.BucketState
	applied   map[int]int64          // per-bucket contiguous applied floor
	above     map[int]map[int64]bool // applied sequences above the floor (out-of-order arrivals)
	processed int64                  // entries folded (post-dedup)
	deduped   int64                  // entries skipped as already applied
}

// NewWorker builds an idle worker; Listen starts serving.
func NewWorker() *Worker {
	return &Worker{
		conns:   map[net.Conn]struct{}{},
		buckets: map[int]flux.BucketState{},
		applied: map[int]int64{},
		above:   map[int]map[int64]bool{},
	}
}

// SetChaos installs (or clears) seeded connection-level fault
// injection — drops, half-open partitions, delayed acks — on every
// exchange connection accepted from now on: the deterministic injector
// the cluster tests use instead of ad-hoc sleeps.
func (w *Worker) SetChaos(in *chaos.Injector) {
	w.mu.Lock()
	w.chaos = in
	w.mu.Unlock()
}

func (w *Worker) chaosInjector() *chaos.Injector {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.chaos
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// Listen binds the exchange port (use ":0" in tests) and serves until
// Close; returns the bound address.
func (w *Worker) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	w.ln = ln
	w.wg.Add(1)
	go w.acceptLoop()
	return ln.Addr().String(), nil
}

func (w *Worker) acceptLoop() {
	defer w.wg.Done()
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			return
		}
		wrapped := chaos.WrapConn(conn, w.chaosInjector())
		w.mu.Lock()
		if w.closed.Load() {
			w.mu.Unlock()
			wrapped.Close()
			return
		}
		w.conns[wrapped] = struct{}{}
		w.mu.Unlock()
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			defer func() {
				w.mu.Lock()
				delete(w.conns, wrapped)
				w.mu.Unlock()
			}()
			w.serve(wrapped)
		}()
	}
}

// serve handles one coordinator connection. A connection failure is not
// fatal to the worker: state stays, and a reconnecting coordinator
// resumes against the same applied floors.
func (w *Worker) serve(conn net.Conn) {
	wr := newWire(conn)
	defer wr.close()
	var out []byte // reused reply buffer
	for {
		payload, err := wr.readFrame()
		if err != nil {
			return
		}
		d := &decoder{buf: payload[1:]}
		out = out[:0]
		switch payload[0] {
		case mHello:
			id := int(d.uvarint())
			if d.err != nil {
				return
			}
			w.mu.Lock()
			w.id = id
			w.mu.Unlock()
			w.logf("cluster worker %d: coordinator connected", id)
			continue
		case mData:
			bucket, baseSeq, entries := decodeData(d)
			if d.err != nil {
				return
			}
			upTo := w.applyData(bucket, baseSeq, entries)
			// A delayed ack is the classic ambiguous-failure window: the
			// coordinator may retransmit entries the worker already
			// applied; the dedup floor above is what keeps the retry
			// harmless.
			if delay := w.chaosInjector().DelayAck(); delay > 0 {
				time.Sleep(delay)
			}
			out = appendAck(out, bucket, upTo)
		case mPing:
			w.mu.Lock()
			processed := w.processed
			w.mu.Unlock()
			out = appendPong(out, processed)
		case mFetch:
			bucket := int(d.uvarint())
			drop := d.byteVal() == 1
			if d.err != nil {
				return
			}
			st, upTo := w.fetchState(bucket, drop)
			out = appendState(out, mState, bucket, upTo, st)
		case mInstall:
			bucket := int(d.uvarint())
			upTo := d.varint()
			st := d.state()
			if d.err != nil {
				return
			}
			w.installState(bucket, upTo, st)
			out = appendInstalled(out, bucket)
		case mCollect:
			n := d.uvarint()
			if d.err != nil || n > maxFrame {
				return
			}
			merged := flux.BucketState{}
			w.mu.Lock()
			for i := uint64(0); i < n; i++ {
				if st := w.buckets[int(d.uvarint())]; st != nil {
					merged.Merge(st)
				}
			}
			w.mu.Unlock()
			if d.err != nil {
				return
			}
			out = appendState(out, mCollectReply, 0, 0, merged)
		default:
			w.logf("cluster worker: unknown message type %d", payload[0])
			return
		}
		if err := wr.writeFrame(out); err != nil {
			return
		}
	}
}

// applyData folds an entry batch into its bucket exactly once per
// sequence and returns the new contiguous applied floor — the only
// value it is safe to acknowledge. Sequences may arrive out of order
// (concurrent routers, retransmit racing a delayed original), so dedup
// is exact: floor plus the set of applied sequences above it, with the
// floor advanced only across a contiguous prefix.
func (w *Worker) applyData(bucket int, baseSeq int64, entries []Entry) int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := w.buckets[bucket]
	if st == nil {
		st = flux.BucketState{}
		w.buckets[bucket] = st
	}
	floor := w.applied[bucket]
	above := w.above[bucket]
	for i, e := range entries {
		seq := baseSeq + int64(i)
		if seq <= floor || above[seq] {
			w.deduped++
			continue
		}
		st.Fold(e.Key, e.Val)
		w.processed++
		if above == nil {
			above = map[int64]bool{}
			w.above[bucket] = above
		}
		above[seq] = true
	}
	for above[floor+1] {
		delete(above, floor+1)
		floor++
	}
	w.applied[bucket] = floor
	return floor
}

// fetchState snapshots (and with drop, removes) one bucket's state.
func (w *Worker) fetchState(bucket int, drop bool) (flux.BucketState, int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := w.buckets[bucket]
	upTo := w.applied[bucket]
	if st == nil {
		st = flux.BucketState{}
	}
	if drop {
		delete(w.buckets, bucket)
		delete(w.applied, bucket)
		delete(w.above, bucket)
		return st, upTo
	}
	return st.Clone(), upTo
}

// installState replaces a bucket's state and dedup floor (failover
// catch-up and handoff both land here; the moved state supersedes any
// replica the node already held).
func (w *Worker) installState(bucket int, upTo int64, st flux.BucketState) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buckets[bucket] = st
	w.applied[bucket] = upTo
	delete(w.above, bucket) // the installed floor supersedes any gap set
}

// WorkerStats is a worker's observable state (tests, logs, telemetry).
type WorkerStats struct {
	ID        int
	Buckets   int
	Processed int64
	Deduped   int64
}

// Stats snapshots the worker.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WorkerStats{ID: w.id, Buckets: len(w.buckets), Processed: w.processed, Deduped: w.deduped}
}

// Addr returns the bound exchange address ("" before Listen).
func (w *Worker) Addr() string {
	if w.ln == nil {
		return ""
	}
	return w.ln.Addr().String()
}

// Close stops the listener and severs live connections. State is kept:
// a closed worker models a partitioned node, not a wiped one.
func (w *Worker) Close() error {
	if !w.closed.CompareAndSwap(false, true) {
		return nil
	}
	var err error
	if w.ln != nil {
		err = w.ln.Close()
	}
	// Serve loops block in readFrame; closing the listener does not
	// unblock them, so sever the live connections too.
	w.mu.Lock()
	for c := range w.conns {
		c.Close()
	}
	w.mu.Unlock()
	w.wg.Wait()
	return err
}

// String identifies the worker in logs.
func (w *Worker) String() string {
	return fmt.Sprintf("worker[%d]@%s", w.id, w.Addr())
}
