package psoup

import (
	"testing"

	"telegraphcq/internal/storage"
	"telegraphcq/internal/tuple"
)

func attachArchive(t *testing.T, p *PSoup) *storage.Archive {
	t.Helper()
	pool := storage.NewPool(16, storage.Clock)
	a, err := storage.NewArchive("stocks", schema, pool, storage.ArchiveConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	p.AttachArchive("stocks", a)
	return a
}

// §4.3: with history flushed to disk, a late query reaches past the
// in-memory retention bound.
func TestLateQueryReadsDiskHistory(t *testing.T) {
	p := New()
	p.DataRetention = 100 // memory keeps only the last 100
	a := attachArchive(t, p)
	for seq := int64(1); seq <= 5000; seq++ {
		price := float64(seq % 1000)
		if err := p.PushData(row(seq, "A", price)); err != nil {
			t.Fatal(err)
		}
	}
	if p.HistorySize("stocks") > 100 {
		t.Fatalf("memory history = %d", p.HistorySize("stocks"))
	}
	if a.Count() != 5000 {
		t.Fatalf("archive = %d", a.Count())
	}
	// A late query over a rare predicate: matches exist only in the
	// evicted portion of the stream.
	if err := p.AddQuery(&Query{ID: 0, Stream: "stocks", Where: gtPrice(997)}); err != nil {
		t.Fatal(err)
	}
	got, err := p.Invoke(0, 5000)
	if err != nil {
		t.Fatal(err)
	}
	// prices 998, 999 occur for seq%1000 in {998,999}: 5 full cycles × 2.
	if len(got) != 10 {
		t.Fatalf("late query rows = %d, want 10", len(got))
	}
	// Rows must include evicted (old) sequence numbers.
	if got[0].TS.Seq != 998 {
		t.Fatalf("first match seq = %d, want 998 (from disk)", got[0].TS.Seq)
	}
}

// Without an archive the same late query sees only memory — the contrast
// that motivates flushing state to disk.
func TestLateQueryWithoutArchiveSeesOnlyMemory(t *testing.T) {
	p := New()
	p.DataRetention = 100
	for seq := int64(1); seq <= 5000; seq++ {
		_ = p.PushData(row(seq, "A", float64(seq%1000)))
	}
	_ = p.AddQuery(&Query{ID: 0, Stream: "stocks", Where: gtPrice(997)})
	got, _ := p.Invoke(0, 5000)
	if len(got) != 2 { // only seqs 4998, 4999 are retained
		t.Fatalf("memory-only rows = %d, want 2", len(got))
	}
}

// Archived history does not duplicate the in-memory portion during the
// new-query-over-old-data scan.
func TestNoDoubleCountingAcrossMemoryAndDisk(t *testing.T) {
	p := New()
	p.DataRetention = 50
	attachArchive(t, p)
	for seq := int64(1); seq <= 200; seq++ {
		_ = p.PushData(row(seq, "A", 1))
	}
	_ = p.AddQuery(&Query{ID: 0, Stream: "stocks", Where: gtPrice(0)})
	got, _ := p.Invoke(0, 200)
	if len(got) != 200 {
		t.Fatalf("rows = %d, want exactly 200 (no duplicates, no gaps)", len(got))
	}
	seen := map[int64]bool{}
	for _, r := range got {
		if seen[r.TS.Seq] {
			t.Fatalf("duplicate seq %d", r.TS.Seq)
		}
		seen[r.TS.Seq] = true
	}
}

// The archive also serves ongoing (already-registered) queries whose
// results were materialized before eviction — materialization is
// unaffected by the memory bound.
func TestMaterializedResultsSurviveDataEviction(t *testing.T) {
	p := New()
	p.DataRetention = 10
	attachArchive(t, p)
	_ = p.AddQuery(&Query{ID: 0, Stream: "stocks", Where: gtPrice(0)})
	for seq := int64(1); seq <= 1000; seq++ {
		_ = p.PushData(row(seq, "A", 1))
	}
	got, _ := p.Invoke(0, 1000)
	if len(got) != 1000 {
		t.Fatalf("materialized rows = %d, want 1000", len(got))
	}
	_ = tuple.Null()
}
