// Package psoup implements PSoup (Chandrasekaran & Franklin, VLDB 2002;
// §3.2 of the TelegraphCQ paper): query processing as a symmetric join
// between data and queries.
//
//   - New data is built into a Data SteM and probed against the Query
//     SteM (old queries), materializing matches into the Results
//     Structure.
//   - New queries are built into the Query SteM and probed against the
//     Data SteM (old data), so queries see history from before their
//     registration.
//
// Computation of results is separated from delivery: clients register a
// query, disconnect, and later Invoke it; the window is imposed on the
// materialized Results Structure at invocation time, making retrieval
// O(answer) instead of O(history).
package psoup

import (
	"fmt"
	"sort"

	"telegraphcq/internal/bitset"
	"telegraphcq/internal/expr"
	"telegraphcq/internal/operator"
	"telegraphcq/internal/storage"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
)

// Query is a standing PSoup query over one stream.
type Query struct {
	ID     int
	Stream string
	Where  expr.Expr
	// Window is imposed at invocation time: ST binds to the invocation
	// instant, and the first window instance [left, right] selects the
	// returned results. Nil means "everything retained".
	Window *window.Spec
}

// Stats counts PSoup activity.
type Stats struct {
	DataArrived   int64
	QueriesAdded  int64
	Matches       int64 // rows materialized into the Results Structure
	Invocations   int64
	RowsRetrieved int64
	Evicted       int64
}

type registered struct {
	q        *Query
	residual expr.Expr
	results  []*tuple.Tuple // materialized matches, ascending seq
	// retention is how far back (in sequence numbers) any invocation
	// window can reach; results older than maxSeq-retention+1 are evicted.
	retention int64
}

// PSoup is the engine. It is single-owner (one Execution Object).
type PSoup struct {
	// Data SteM: retained stream history per stream.
	data map[string][]*tuple.Tuple
	// Query SteM: grouped filters per qualified attribute plus the
	// registered query table.
	gfilters map[string]*operator.GroupedFilter
	queries  map[int]*registered
	universe map[string]*bitset.Set // per stream: registered query bits
	maxSeq   map[string]int64
	// DataRetention bounds retained in-memory history per stream
	// (0 = unlimited).
	DataRetention int64
	// archives spool evicted history to disk (§4.3: SteMs "may need to
	// be flushed to disk"); late queries reach past memory through them.
	archives map[string]*storage.Archive
	stats    Stats
	mscratch bitset.Set // per-push grouped-filter match scratch (single-owner)
}

// New builds an empty PSoup engine.
func New() *PSoup {
	return &PSoup{
		data:     map[string][]*tuple.Tuple{},
		gfilters: map[string]*operator.GroupedFilter{},
		queries:  map[int]*registered{},
		universe: map[string]*bitset.Set{},
		maxSeq:   map[string]int64{},
		archives: map[string]*storage.Archive{},
	}
}

// Stats returns a copy of the counters.
func (p *PSoup) Stats() Stats { return p.stats }

// AttachArchive spools a stream's history to disk: arriving tuples are
// appended to the archive, and queries registered after memory eviction
// still see the full history (new query ⋈ old data reaches the disk).
func (p *PSoup) AttachArchive(stream string, a *storage.Archive) {
	p.archives[stream] = a
}

// AddQuery registers a query: it enters the Query SteM and is
// immediately probed against previously arrived data (new query ⋈ old
// data).
func (p *PSoup) AddQuery(q *Query) error {
	if _, dup := p.queries[q.ID]; dup {
		return fmt.Errorf("psoup: duplicate query id %d", q.ID)
	}
	if q.Stream == "" {
		return fmt.Errorf("psoup: query %d has no stream", q.ID)
	}
	r := &registered{q: q, retention: int64(1) << 62}
	if q.Window != nil {
		if err := q.Window.Validate(); err != nil {
			return fmt.Errorf("psoup: query %d window: %w", q.ID, err)
		}
		kind, width, _ := q.Window.Classify()
		// A window anchored at the invocation instant reaches back
		// `width`; landmark/backward windows reach arbitrary history.
		if kind == window.KindSliding && width > 0 {
			r.retention = width
		}
	}

	// Insert boolean factors into the Query SteM's grouped filters.
	var residuals []expr.Expr
	for _, factor := range expr.Conjuncts(q.Where) {
		if rf, ok := expr.AsRangeFactor(factor); ok {
			col := rf.Col
			if col.Source == "" {
				col = expr.Col(q.Stream, col.Name)
				rf.Col = col
			}
			g := p.gfilters[col.String()]
			if g == nil {
				g = operator.NewGroupedFilter(col)
				p.gfilters[col.String()] = g
			}
			if err := g.AddFactor(q.ID, rf); err != nil {
				return err
			}
			continue
		}
		residuals = append(residuals, factor)
	}
	r.residual = expr.Conjoin(residuals)

	u := p.universe[q.Stream]
	if u == nil {
		u = bitset.New(q.ID + 1)
		p.universe[q.Stream] = u
	}
	u.Add(q.ID)
	p.queries[q.ID] = r
	p.stats.QueriesAdded++

	// New query ⋈ old data: evaluate against retained history. With an
	// archive attached, history evicted from memory is read back from
	// disk first so the late query sees everything.
	mem := p.data[q.Stream]
	if a := p.archives[q.Stream]; a != nil {
		memStart := int64(1) << 62
		if len(mem) > 0 {
			memStart = mem[0].TS.Seq
		}
		err := a.ScanRange(0, memStart-1, func(t *tuple.Tuple) bool {
			ok, e := p.matchOne(r, t)
			if e != nil {
				return false
			}
			if ok {
				t.Retain() // archive-read rows enter the Results Structure
				r.results = append(r.results, t)
				p.stats.Matches++
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	for _, t := range mem {
		ok, err := p.matchOne(r, t)
		if err != nil {
			return err
		}
		if ok {
			r.results = append(r.results, t)
			p.stats.Matches++
		}
	}
	return nil
}

// matchOne evaluates one query's full predicate on one tuple (used only
// for the new-query-over-old-data scan; arriving data uses the shared
// grouped-filter probe).
func (p *PSoup) matchOne(r *registered, t *tuple.Tuple) (bool, error) {
	if r.q.Where == nil {
		return true, nil
	}
	return expr.Truthy(r.q.Where, t)
}

// RemoveQuery drops a standing query and its materialized results.
func (p *PSoup) RemoveQuery(id int) {
	r, ok := p.queries[id]
	if !ok {
		return
	}
	delete(p.queries, id)
	for _, g := range p.gfilters {
		g.RemoveQuery(id)
	}
	if u := p.universe[r.q.Stream]; u != nil {
		u.Remove(id)
	}
}

// PushData admits one stream tuple: new data ⋈ old queries. The tuple
// is retained in the Data SteM and its matches are materialized.
func (p *PSoup) PushData(t *tuple.Tuple) error {
	if len(t.Schema.Sources) != 1 {
		return fmt.Errorf("psoup: tuple must have exactly one source")
	}
	src := t.Schema.Sources[0]
	p.stats.DataArrived++
	t.Retain() // entering the Data SteM: this tuple is history now
	p.data[src] = append(p.data[src], t)
	if t.TS.Seq > p.maxSeq[src] {
		p.maxSeq[src] = t.TS.Seq
	}
	if a := p.archives[src]; a != nil {
		if err := a.Append(t); err != nil {
			return err
		}
	}

	u := p.universe[src]
	if u != nil && !u.Empty() {
		matched := u.Clone()
		for _, g := range p.gfilters {
			col := g.Column()
			if col.Source != src {
				continue
			}
			i, err := col.Resolve(t.Schema)
			if err != nil {
				return err
			}
			if err := g.MatchQueriesInto(t.Values[i], u, &p.mscratch); err != nil {
				return err
			}
			matched.Intersect(&p.mscratch)
		}
		var merr error
		matched.ForEach(func(id int) bool {
			r := p.queries[id]
			if r == nil {
				return true
			}
			if r.residual != nil {
				ok, err := expr.Truthy(r.residual, t)
				if err != nil {
					merr = err
					return false
				}
				if !ok {
					return true
				}
			}
			r.results = append(r.results, t)
			p.stats.Matches++
			return true
		})
		if merr != nil {
			return merr
		}
	}
	p.evict(src)
	return nil
}

// evict trims the Data SteM and Results Structures past every window's
// reach.
func (p *PSoup) evict(src string) {
	maxSeq := p.maxSeq[src]
	// Results: per query retention.
	for _, r := range p.queries {
		if r.q.Stream != src || r.retention >= int64(1)<<62 {
			continue
		}
		horizon := maxSeq - r.retention + 1
		cut := sort.Search(len(r.results), func(i int) bool {
			return r.results[i].TS.Seq >= horizon
		})
		if cut > 0 {
			p.stats.Evicted += int64(cut)
			r.results = append(r.results[:0], r.results[cut:]...)
		}
	}
	// Data SteM: global bound (new queries can reach back this far).
	if p.DataRetention > 0 {
		horizon := maxSeq - p.DataRetention + 1
		d := p.data[src]
		cut := sort.Search(len(d), func(i int) bool { return d[i].TS.Seq >= horizon })
		if cut > 0 {
			p.data[src] = append(d[:0], d[cut:]...)
		}
	}
}

// Invoke retrieves the current materialized answer of a standing query.
// at is the invocation instant (e.g. the stream's current max sequence
// number); the query's window binds ST to it and its first instance
// selects the rows. A nil window returns every retained result.
func (p *PSoup) Invoke(id int, at int64) ([]*tuple.Tuple, error) {
	r, ok := p.queries[id]
	if !ok {
		return nil, fmt.Errorf("psoup: unknown query %d", id)
	}
	p.stats.Invocations++
	if r.q.Window == nil {
		out := append([]*tuple.Tuple(nil), r.results...)
		p.stats.RowsRetrieved += int64(len(out))
		return out, nil
	}
	seq := window.NewSequence(r.q.Window, at)
	inst, ok2 := seq.Next()
	if !ok2 {
		return nil, nil
	}
	rng, ok3 := inst.Ranges[r.q.Stream]
	if !ok3 {
		return nil, fmt.Errorf("psoup: window has no WindowIs for %s", r.q.Stream)
	}
	// Results are sorted by seq: binary search the window bounds.
	lo := sort.Search(len(r.results), func(i int) bool { return r.results[i].TS.Seq >= rng.Left })
	hi := sort.Search(len(r.results), func(i int) bool { return r.results[i].TS.Seq > rng.Right })
	out := append([]*tuple.Tuple(nil), r.results[lo:hi]...)
	p.stats.RowsRetrieved += int64(len(out))
	return out, nil
}

// ResultSize returns the number of materialized rows for a query.
func (p *PSoup) ResultSize(id int) int {
	if r, ok := p.queries[id]; ok {
		return len(r.results)
	}
	return 0
}

// HistorySize returns retained Data SteM tuples for a stream.
func (p *PSoup) HistorySize(stream string) int { return len(p.data[stream]) }

// InvokeRecompute answers a query by rescanning the Data SteM instead of
// the Results Structure — the no-materialization baseline the PSoup
// paper compares against (E5).
func (p *PSoup) InvokeRecompute(id int, at int64) ([]*tuple.Tuple, error) {
	r, ok := p.queries[id]
	if !ok {
		return nil, fmt.Errorf("psoup: unknown query %d", id)
	}
	p.stats.Invocations++
	var rng *window.Range
	if r.q.Window != nil {
		seq := window.NewSequence(r.q.Window, at)
		inst, ok2 := seq.Next()
		if !ok2 {
			return nil, nil
		}
		w, ok3 := inst.Ranges[r.q.Stream]
		if !ok3 {
			return nil, fmt.Errorf("psoup: window has no WindowIs for %s", r.q.Stream)
		}
		rng = &w
	}
	var out []*tuple.Tuple
	for _, t := range p.data[r.q.Stream] {
		if rng != nil && !rng.Contains(t.TS.Seq) {
			continue
		}
		ok, err := p.matchOne(r, t)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, t)
		}
	}
	p.stats.RowsRetrieved += int64(len(out))
	return out, nil
}
