package psoup

import (
	"math/rand"
	"testing"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
)

var schema = tuple.NewSchema(
	tuple.Column{Source: "stocks", Name: "sym", Kind: tuple.KindString},
	tuple.Column{Source: "stocks", Name: "price", Kind: tuple.KindFloat},
)

func row(seq int64, sym string, price float64) *tuple.Tuple {
	t := tuple.New(schema, tuple.String(sym), tuple.Float(price))
	t.TS = tuple.Timestamp{Seq: seq}
	return t
}

func gtPrice(v float64) expr.Expr {
	return expr.Bin(expr.OpGt, expr.Col("", "price"), expr.Lit(tuple.Float(v)))
}

func TestNewDataOldQuery(t *testing.T) {
	p := New()
	if err := p.AddQuery(&Query{ID: 0, Stream: "stocks", Where: gtPrice(50)}); err != nil {
		t.Fatal(err)
	}
	for seq := int64(1); seq <= 10; seq++ {
		if err := p.PushData(row(seq, "A", float64(seq*10))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := p.Invoke(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 { // 60..100
		t.Fatalf("results = %d", len(got))
	}
}

func TestNewQueryOldData(t *testing.T) {
	p := New()
	for seq := int64(1); seq <= 10; seq++ {
		_ = p.PushData(row(seq, "A", float64(seq*10)))
	}
	// Query arrives after the data: must still see history.
	if err := p.AddQuery(&Query{ID: 7, Stream: "stocks", Where: gtPrice(80)}); err != nil {
		t.Fatal(err)
	}
	got, err := p.Invoke(7, 10)
	if err != nil || len(got) != 2 { // 90, 100
		t.Fatalf("results = %d, %v", len(got), err)
	}
}

func TestWindowImposedAtInvocation(t *testing.T) {
	p := New()
	// Window: the 5 most recent tuples at invocation time.
	q := &Query{ID: 0, Stream: "stocks", Where: gtPrice(0),
		Window: window.Sliding("stocks", 5, 1, 0)}
	if err := p.AddQuery(q); err != nil {
		t.Fatal(err)
	}
	for seq := int64(1); seq <= 20; seq++ {
		_ = p.PushData(row(seq, "A", 1))
	}
	got, _ := p.Invoke(0, 20)
	if len(got) != 5 {
		t.Fatalf("at=20: %d rows", len(got))
	}
	for _, r := range got {
		if r.TS.Seq < 16 || r.TS.Seq > 20 {
			t.Fatalf("row outside window: %d", r.TS.Seq)
		}
	}
	// Invoking at an earlier instant sees the earlier window (if results
	// are still retained).
	got, _ = p.Invoke(0, 18)
	for _, r := range got {
		if r.TS.Seq < 14 || r.TS.Seq > 18 {
			t.Fatalf("row outside window(18): %d", r.TS.Seq)
		}
	}
}

func TestDisconnectedOperation(t *testing.T) {
	// Register, push data while "disconnected", reconnect and invoke
	// repeatedly: results evolve without recomputation.
	p := New()
	_ = p.AddQuery(&Query{ID: 0, Stream: "stocks", Where: gtPrice(5)})
	for seq := int64(1); seq <= 3; seq++ {
		_ = p.PushData(row(seq, "A", 10))
	}
	got1, _ := p.Invoke(0, 3)
	for seq := int64(4); seq <= 6; seq++ {
		_ = p.PushData(row(seq, "A", 10))
	}
	got2, _ := p.Invoke(0, 6)
	if len(got1) != 3 || len(got2) != 6 {
		t.Fatalf("invocations: %d then %d", len(got1), len(got2))
	}
}

func TestMaterializedMatchesRecompute(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	p := New()
	for i := 0; i < 20; i++ {
		_ = p.AddQuery(&Query{
			ID: i, Stream: "stocks",
			Where:  gtPrice(float64(r.Intn(100))),
			Window: window.Sliding("stocks", int64(10+r.Intn(50)), 1, 0),
		})
	}
	for seq := int64(1); seq <= 300; seq++ {
		_ = p.PushData(row(seq, "A", float64(r.Intn(100))))
	}
	for i := 0; i < 20; i++ {
		mat, err := p.Invoke(i, 300)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := p.InvokeRecompute(i, 300)
		if err != nil {
			t.Fatal(err)
		}
		if len(mat) != len(rec) {
			t.Fatalf("query %d: materialized=%d recomputed=%d", i, len(mat), len(rec))
		}
		for j := range mat {
			if mat[j].TS.Seq != rec[j].TS.Seq {
				t.Fatalf("query %d row %d: seq %d vs %d", i, j, mat[j].TS.Seq, rec[j].TS.Seq)
			}
		}
	}
}

func TestResultsEviction(t *testing.T) {
	p := New()
	_ = p.AddQuery(&Query{ID: 0, Stream: "stocks", Where: gtPrice(0),
		Window: window.Sliding("stocks", 10, 1, 0)})
	for seq := int64(1); seq <= 1000; seq++ {
		_ = p.PushData(row(seq, "A", 1))
	}
	if n := p.ResultSize(0); n > 10 {
		t.Fatalf("results retained = %d, want <= 10", n)
	}
	if p.Stats().Evicted == 0 {
		t.Fatal("no evictions counted")
	}
}

func TestDataRetentionBound(t *testing.T) {
	p := New()
	p.DataRetention = 50
	for seq := int64(1); seq <= 500; seq++ {
		_ = p.PushData(row(seq, "A", 1))
	}
	if n := p.HistorySize("stocks"); n > 50 {
		t.Fatalf("history = %d, want <= 50", n)
	}
	// A late query sees only retained history.
	_ = p.AddQuery(&Query{ID: 0, Stream: "stocks", Where: gtPrice(0)})
	got, _ := p.Invoke(0, 500)
	if len(got) > 50 {
		t.Fatalf("late query saw %d rows", len(got))
	}
}

func TestRemoveQuery(t *testing.T) {
	p := New()
	_ = p.AddQuery(&Query{ID: 0, Stream: "stocks", Where: gtPrice(0)})
	_ = p.PushData(row(1, "A", 1))
	p.RemoveQuery(0)
	if _, err := p.Invoke(0, 1); err == nil {
		t.Fatal("invoke after removal succeeded")
	}
	// Data continues to flow without error.
	if err := p.PushData(row(2, "A", 1)); err != nil {
		t.Fatal(err)
	}
	p.RemoveQuery(99) // no-op
}

func TestResidualOrPredicate(t *testing.T) {
	p := New()
	where := expr.Bin(expr.OpOr,
		expr.Bin(expr.OpEq, expr.Col("", "sym"), expr.Lit(tuple.String("A"))),
		expr.Bin(expr.OpEq, expr.Col("", "sym"), expr.Lit(tuple.String("B"))))
	_ = p.AddQuery(&Query{ID: 0, Stream: "stocks", Where: where})
	for i, sym := range []string{"A", "B", "C"} {
		_ = p.PushData(row(int64(i+1), sym, 1))
	}
	got, _ := p.Invoke(0, 3)
	if len(got) != 2 {
		t.Fatalf("rows = %d", len(got))
	}
}

func TestErrors(t *testing.T) {
	p := New()
	if err := p.AddQuery(&Query{ID: 0}); err == nil {
		t.Fatal("query without stream accepted")
	}
	_ = p.AddQuery(&Query{ID: 1, Stream: "s"})
	if err := p.AddQuery(&Query{ID: 1, Stream: "s"}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	other := tuple.New(tuple.NewSchema(
		tuple.Column{Source: "news", Name: "sym", Kind: tuple.KindString}),
		tuple.String("A"))
	j := tuple.Concat(row(1, "A", 1), other)
	if err := p.PushData(j); err == nil {
		t.Fatal("multi-source tuple accepted")
	}
	if _, err := p.Invoke(99, 0); err == nil {
		t.Fatal("unknown query invoked")
	}
	if _, err := p.InvokeRecompute(99, 0); err == nil {
		t.Fatal("unknown query recomputed")
	}
}

func TestStatsCounts(t *testing.T) {
	p := New()
	_ = p.AddQuery(&Query{ID: 0, Stream: "stocks", Where: gtPrice(0)})
	_ = p.PushData(row(1, "A", 1))
	_, _ = p.Invoke(0, 1)
	s := p.Stats()
	if s.DataArrived != 1 || s.QueriesAdded != 1 || s.Matches != 1 ||
		s.Invocations != 1 || s.RowsRetrieved != 1 {
		t.Fatalf("stats = %+v", s)
	}
}
