package eddy

import (
	"fmt"
	"time"

	"telegraphcq/internal/bitset"
	"telegraphcq/internal/operator"
	"telegraphcq/internal/tuple"
)

// Alternative marks modules that are interchangeable access paths: when
// a tuple is routed to one member of a non-empty group, every member of
// that group is marked done for it. This is how an Eddy hybridizes join
// algorithms (§2.2): the index AM and the SteM probe compete in the
// lottery, and the winner per tuple decides the method.
type Alternative interface {
	Group() string
}

// Stats is a snapshot of the Eddy's activity counters.
type Stats struct {
	Admitted    int64 // source + derived tuples entering routing
	Routed      int64 // tuple→module routing decisions executed
	ChooseCalls int64 // policy invocations (batching amortizes these)
	Outputs     int64 // tuples that completed all modules
	Dropped     int64
	Bounced     int64
}

// ModuleStats is a snapshot of one module's routing observations: how
// many tuples the Eddy sent it, what became of them, and the cumulative
// processing time — the raw material for selectivity and cost-per-tuple
// estimates (the same observations the routing policy feeds on, §2.2).
type ModuleStats struct {
	Name     string
	Routed   int64
	Passed   int64
	Dropped  int64
	Consumed int64
	Bounced  int64
	WorkNs   int64 // cumulative Process time, nanoseconds
}

// Selectivity estimates the fraction of routed tuples that survived.
func (m ModuleStats) Selectivity() float64 {
	if m.Routed == 0 {
		return 1
	}
	return 1 - float64(m.Dropped)/float64(m.Routed)
}

// CostNs estimates nanoseconds of work per routed tuple.
func (m ModuleStats) CostNs() float64 {
	if m.Routed == 0 {
		return 0
	}
	return float64(m.WorkNs) / float64(m.Routed)
}

// Eddy routes tuples among a set of modules according to a Policy.
// It is single-threaded: one Execution Object drives it via Admit and
// Run. The zero value is not usable; call New.
type Eddy struct {
	modules []operator.Module
	stems   []*operator.StemModule
	policy  Policy
	output  func(*tuple.Tuple)

	groups map[string]*bitset.Set // alternative-group name → member set

	work   []*batch // FIFO of batches awaiting routing
	stats  Stats
	serial int64 // admission serial: stamps Tuple.Arrival

	// mstats holds one plain counter block per module (index-aligned
	// with modules). Like everything else in the Eddy it is owned by the
	// single driving Execution Object; telemetry snapshots it through
	// the EO's control channel, keeping the hot path free of atomics.
	mstats []ModuleStats

	// BatchSize groups same-schema source tuples so one routing decision
	// covers many tuples (§4.3 "batching tuples ... reduce per-tuple
	// costs"). 1 disables batching.
	BatchSize int
	// Vectorized enables the columnar fast path: batches routed to
	// modules implementing operator.VecModule are transposed into a
	// ColBatch and processed column-at-a-time (compiled predicates,
	// selection vectors) instead of tuple-at-a-time. Any failure falls
	// back to the per-tuple interpreter path for that batch.
	Vectorized bool
	// FixedHops routes each batch through this many modules per policy
	// decision (§4.3 "fixing operators"). 1 re-decides every hop.
	FixedHops int

	pendingBatch map[string]*batch // open admission batches by schema signature
	pendingOrder []string

	// free recycles batch structs (tuple slice + ready/done bitsets) so
	// steady-state routing does not allocate per admission. Bounded: a
	// burst of in-flight batches beyond the cap falls back to the heap.
	free []*batch
	// inherit is the done-set scratch emitFn reads; valid only during a
	// routeBatch Process call. No module stores its emit callback
	// (deferred producers re-enter through Idle/e.emit), so one shared
	// closure replaces a per-batch clone + closure allocation.
	inherit bitset.Set
	emitFn  operator.Emit

	// Columnar scratch for the vectorized path, reused across batches.
	cb   tuple.ColBatch
	keep []bool
}

// freeBatchCap bounds the batch freelist.
const freeBatchCap = 64

// newBatch returns an empty batch with cleared routing state, reusing a
// retired one when available.
func (e *Eddy) newBatch() *batch {
	if n := len(e.free); n > 0 {
		b := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return b
	}
	return &batch{ready: bitset.New(len(e.modules)), done: bitset.New(len(e.modules))}
}

// freeBatch retires a fully routed batch to the freelist.
func (e *Eddy) freeBatch(b *batch) {
	if len(e.free) >= freeBatchCap {
		return
	}
	for i := range b.tuples {
		b.tuples[i] = nil
	}
	b.tuples = b.tuples[:0]
	b.ready.Clear()
	b.done.Clear()
	b.bounces = 0
	e.free = append(e.free, b)
}

// batch is a set of tuples sharing a routing state. With BatchSize 1
// every batch holds one tuple.
type batch struct {
	tuples []*tuple.Tuple
	ready  *bitset.Set
	done   *bitset.Set
	// bounces counts consecutive all-bounce rounds to detect stalls.
	bounces int
}

// New builds an Eddy over the given modules. output receives tuples that
// have been handled by every interested module (the caller decides which
// queries they satisfy).
func New(modules []operator.Module, policy Policy, output func(*tuple.Tuple)) *Eddy {
	e := &Eddy{
		modules:      modules,
		policy:       policy,
		output:       output,
		groups:       map[string]*bitset.Set{},
		BatchSize:    1,
		FixedHops:    1,
		pendingBatch: map[string]*batch{},
	}
	e.emitFn = func(x *tuple.Tuple) { e.enqueueDerived(x, &e.inherit) }
	for i, m := range modules {
		e.mstats = append(e.mstats, ModuleStats{Name: m.Name()})
		if sm, ok := m.(*operator.StemModule); ok {
			e.stems = append(e.stems, sm)
		}
		if alt, ok := m.(Alternative); ok && alt.Group() != "" {
			g := e.groups[alt.Group()]
			if g == nil {
				g = bitset.New(len(modules))
				e.groups[alt.Group()] = g
			}
			g.Add(i)
		}
	}
	return e
}

// Modules returns the routed module list (index order matters to
// policies).
func (e *Eddy) Modules() []operator.Module { return e.modules }

// AddModule appends a module at runtime and returns its index. Tuples
// already in flight are not re-routed through it; new admissions are —
// the discipline for folding freshly registered queries into a running
// dataflow (§4.2.1 "plans are dynamically folded into the running
// queries").
func (e *Eddy) AddModule(m operator.Module) int {
	idx := len(e.modules)
	e.modules = append(e.modules, m)
	e.mstats = append(e.mstats, ModuleStats{Name: m.Name()})
	if sm, ok := m.(*operator.StemModule); ok {
		e.stems = append(e.stems, sm)
	}
	if alt, ok := m.(Alternative); ok && alt.Group() != "" {
		g := e.groups[alt.Group()]
		if g == nil {
			g = bitset.New(len(e.modules))
			e.groups[alt.Group()] = g
		}
		g.Add(idx)
	}
	return idx
}

// Stats returns a snapshot of the counters. Must be called from the
// driving Execution Object; telemetry reaches it through the EO's
// control channel.
func (e *Eddy) Stats() Stats {
	return e.stats
}

// ModuleStatsSnapshot returns a copy of the per-module routing
// observations. Like Stats it must be called from the driving Execution
// Object; telemetry reaches it through the EO's control channel.
func (e *Eddy) ModuleStatsSnapshot() []ModuleStats {
	return append([]ModuleStats(nil), e.mstats...)
}

// Add sums two Stats snapshots. Sharded executors snapshot each shard's
// eddy through its own control path (so no counter is ever read off its
// owning thread) and aggregate the copies with Add — concurrent scrapes
// stay race-free because only immutable snapshots are combined.
func (s Stats) Add(o Stats) Stats {
	s.Admitted += o.Admitted
	s.Routed += o.Routed
	s.ChooseCalls += o.ChooseCalls
	s.Outputs += o.Outputs
	s.Dropped += o.Dropped
	s.Bounced += o.Bounced
	return s
}

// MergeModuleStats folds more into dst by module name, summing the raw
// counters (Selectivity/CostNs are derived, so they aggregate
// correctly). Both inputs are snapshots; the merge allocates only when a
// name in more is missing from dst. Order of dst is preserved; new
// names append in their order of appearance.
func MergeModuleStats(dst, more []ModuleStats) []ModuleStats {
	idx := make(map[string]int, len(dst))
	for i, m := range dst {
		idx[m.Name] = i
	}
	for _, m := range more {
		i, ok := idx[m.Name]
		if !ok {
			idx[m.Name] = len(dst)
			dst = append(dst, m)
			continue
		}
		d := &dst[i]
		d.Routed += m.Routed
		d.Passed += m.Passed
		d.Dropped += m.Dropped
		d.Consumed += m.Consumed
		d.Bounced += m.Bounced
		d.WorkNs += m.WorkNs
	}
	return dst
}

// readyBitsInto overwrites r with the fresh ready bitmap for a tuple
// entering routing.
func (e *Eddy) readyBitsInto(t *tuple.Tuple, r *bitset.Set) {
	r.Clear()
	for i, m := range e.modules {
		if m.Interested(t) {
			r.Add(i)
		}
	}
}

// Admit enters a source tuple into the dataflow: it is stamped with its
// admission serial, built into the SteM of its base relation
// (build-before-probe plus the arrival constraint keeps symmetric joins
// exactly-once), then queued for routing.
func (e *Eddy) Admit(t *tuple.Tuple) error {
	e.serial++
	t.Arrival = e.serial
	for _, sm := range e.stems {
		if sm.IsBase(t) {
			if err := sm.Build(t); err != nil {
				return err
			}
		}
	}
	e.enqueue(t)
	return nil
}

// sig is the batching key: tuples sharing a source signature share
// routing state. Single-source schemas (the overwhelmingly common case)
// use the source name itself to avoid building a key per tuple.
func sig(s *tuple.Schema) string {
	if len(s.Sources) == 1 {
		return s.Sources[0]
	}
	k := ""
	for _, src := range s.Sources {
		k += src + "\x00"
	}
	return k
}

// enqueue adds a source tuple to routing, batching with same-signature
// peers when BatchSize > 1.
func (e *Eddy) enqueue(t *tuple.Tuple) {
	e.stats.Admitted++
	if e.BatchSize <= 1 {
		b := e.newBatch()
		e.readyBitsInto(t, b.ready)
		b.tuples = append(b.tuples, t)
		e.work = append(e.work, b)
		return
	}
	key := sig(t.Schema)
	b := e.pendingBatch[key]
	if b == nil {
		b = e.newBatch()
		e.readyBitsInto(t, b.ready)
		e.pendingBatch[key] = b
		e.pendingOrder = append(e.pendingOrder, key)
	}
	b.tuples = append(b.tuples, t)
	if len(b.tuples) >= e.BatchSize {
		delete(e.pendingBatch, key)
		e.removePendingOrder(key)
		e.work = append(e.work, b)
	}
}

// enqueueDerived admits a module-produced tuple (join match, window
// result) with an inherited done set: modules the producing cascade has
// already visited are not revisited, which keeps multiway joins
// exactly-once and avoids re-filtering columns already filtered.
func (e *Eddy) enqueueDerived(t *tuple.Tuple, done *bitset.Set) {
	e.stats.Admitted++
	b := e.newBatch()
	e.readyBitsInto(t, b.ready)
	if done != nil {
		b.done.CopyFrom(done)
	}
	if t.Lin != nil {
		b.done.Union(&t.Lin.Done)
	}
	b.ready.Subtract(b.done)
	// Alternative groups: a done member marks the whole group done.
	for _, g := range e.groups {
		if b.done.IntersectsWith(g) {
			b.ready.Subtract(g)
		}
	}
	b.tuples = append(b.tuples, t)
	e.work = append(e.work, b)
}

func (e *Eddy) removePendingOrder(key string) {
	for i, x := range e.pendingOrder {
		if x == key {
			e.pendingOrder = append(e.pendingOrder[:i], e.pendingOrder[i+1:]...)
			return
		}
	}
}

// flushPending moves partially filled admission batches into the work
// queue (called when the source pauses or ends).
func (e *Eddy) flushPending() {
	for _, k := range e.pendingOrder {
		if b := e.pendingBatch[k]; b != nil && len(b.tuples) > 0 {
			e.work = append(e.work, b)
		}
		delete(e.pendingBatch, k)
	}
	e.pendingOrder = e.pendingOrder[:0]
}

// Pending reports queued work (batches awaiting routing).
func (e *Eddy) Pending() int {
	n := len(e.work)
	for _, b := range e.pendingBatch {
		if len(b.tuples) > 0 {
			n++
		}
	}
	return n
}

// Step performs one routing decision (one batch through up to FixedHops
// modules). It reports whether any work was done.
func (e *Eddy) Step() (bool, error) {
	if len(e.work) == 0 {
		e.flushPending()
		if len(e.work) == 0 {
			return e.idleModules()
		}
	}
	b := e.work[0]
	e.work = e.work[1:]

	hops := e.FixedHops
	if hops < 1 {
		hops = 1
	}
	if ranker, ok := e.policy.(Ranker); ok && hops > 1 {
		// Operator fixing (§4.3): one policy decision yields a sequence
		// of modules the batch is routed through without re-deciding.
		e.stats.ChooseCalls++
		seq := ranker.Rank(b.ready, nil)
		for _, m := range seq {
			if hops == 0 || b.ready.Empty() || len(b.tuples) == 0 {
				break
			}
			if !b.ready.Contains(m) {
				continue // an earlier hop retired this module's group
			}
			hops--
			if err := e.routeBatch(b, m); err != nil {
				return true, err
			}
		}
	} else {
		for hop := 0; hop < hops; hop++ {
			if b.ready.Empty() || len(b.tuples) == 0 {
				break
			}
			m := e.policy.Choose(b.ready)
			e.stats.ChooseCalls++
			if m < 0 {
				break
			}
			if err := e.routeBatch(b, m); err != nil {
				return true, err
			}
		}
	}
	if len(b.tuples) > 0 && !b.ready.Empty() {
		e.work = append(e.work, b)
		return true, nil
	}
	// Routing complete: deliver survivors. The output callback owns each
	// tuple from here (it retains or recycles per the pool's ownership
	// rules); the batch shell goes back to the freelist.
	for _, t := range b.tuples {
		e.stats.Outputs++
		e.output(t)
	}
	e.freeBatch(b)
	return true, nil
}

// routeBatch routes every tuple of b to module m. Tuples the module
// bounces are split into a separate retry batch (with m still ready for
// them) so that tuples that did pass are never re-processed by m.
func (e *Eddy) routeBatch(b *batch, m int) error {
	mod := e.modules[m]
	if e.Vectorized && len(b.tuples) > 1 {
		if vm, ok := mod.(operator.VecModule); ok && e.routeVec(b, m, vm) {
			return nil
		}
	}
	survivors := b.tuples[:0]
	var bounced []*tuple.Tuple
	// Emissions during this batch inherit the batch's done set plus the
	// module being visited, so cascades never revisit this module. The
	// inherited set lives in shared scratch read by the pre-built emitFn:
	// emit is only ever called synchronously inside Process (async
	// producers re-enter through Idle), so no per-batch clone or closure
	// is needed. enqueueDerived copies the scratch before returning.
	e.inherit.CopyFrom(b.done)
	e.inherit.Add(m)
	emit := e.emitFn
	mc := &e.mstats[m]
	for _, t := range b.tuples {
		start := time.Now()
		out, err := mod.Process(t, emit)
		cost := time.Since(start).Nanoseconds()
		if err != nil {
			return fmt.Errorf("module %s: %w", mod.Name(), err)
		}
		e.stats.Routed++
		mc.Routed++
		mc.WorkNs += cost
		produced := 0
		switch out {
		case operator.Pass:
			survivors = append(survivors, t)
			mc.Passed++
			produced = 1
		case operator.Drop:
			e.stats.Dropped++
			mc.Dropped++
			// The routing pass retired this tuple; back to the pool
			// (no-op if a SteM or other store retained it earlier).
			tuple.Recycle(t)
		case operator.Consumed:
			// The module retained the tuple; derived tuples arrive via
			// emit, possibly later (async). Stamp the done set on the
			// tuple so deferred emissions inherit it.
			t.Lineage().Done.CopyFrom(&e.inherit)
			mc.Consumed++
		case operator.Bounce:
			e.stats.Bounced++
			mc.Bounced++
			bounced = append(bounced, t)
			// Back-pressure: a module that cannot absorb work returns
			// the tuple, so it pays a ticket rather than earning one.
			produced = 2
		}
		e.policy.Observe(m, out, produced, cost)
	}
	for i := len(survivors); i < len(b.tuples); i++ {
		b.tuples[i] = nil
	}
	b.tuples = survivors
	if len(bounced) > 0 {
		retry := e.newBatch()
		retry.tuples = append(retry.tuples, bounced...)
		retry.ready.CopyFrom(b.ready) // m still ready for these
		retry.done.CopyFrom(b.done)
		retry.bounces = b.bounces + 1
		if retry.bounces > 3 {
			// Stalled on async work: let idle cycles make progress.
			if _, err := e.idleModules(); err != nil {
				return err
			}
			retry.bounces = 0
		}
		e.work = append(e.work, retry)
	}
	e.markDone(b, m)
	return nil
}

// routeVec tries the columnar fast path: one ProcessVec call covers the
// whole batch, with the routing bookkeeping (stats, policy
// observations, survivor compaction) applied per lane afterwards. It
// reports false when the batch cannot be vectorized — mixed schema
// pointers, an uncompilable predicate, or a lane evaluation error — and
// the caller then replays tuple-at-a-time, which re-establishes exact
// interpreter semantics (including which tuple an error surfaces on).
func (e *Eddy) routeVec(b *batch, m int, vm operator.VecModule) bool {
	if !e.cb.Load(b.tuples) {
		return false
	}
	n := len(b.tuples)
	if cap(e.keep) < n {
		e.keep = make([]bool, n)
	}
	keep := e.keep[:n]
	start := time.Now()
	if !vm.ProcessVec(&e.cb, b.tuples, keep) {
		return false
	}
	cost := time.Since(start).Nanoseconds()
	per := cost / int64(n)
	mc := &e.mstats[m]
	mc.WorkNs += cost
	survivors := b.tuples[:0]
	for i, t := range b.tuples {
		e.stats.Routed++
		mc.Routed++
		if keep[i] {
			survivors = append(survivors, t)
			mc.Passed++
			e.policy.Observe(m, operator.Pass, 1, per)
		} else {
			e.stats.Dropped++
			mc.Dropped++
			tuple.Recycle(t)
			e.policy.Observe(m, operator.Drop, 0, per)
		}
	}
	for i := len(survivors); i < n; i++ {
		b.tuples[i] = nil
	}
	b.tuples = survivors
	e.markDone(b, m)
	return true
}

// markDone clears the module — and its whole alternative group — from
// the batch's ready set.
func (e *Eddy) markDone(b *batch, m int) {
	b.ready.Remove(m)
	b.done.Add(m)
	if alt, ok := e.modules[m].(Alternative); ok && alt.Group() != "" {
		if g := e.groups[alt.Group()]; g != nil {
			b.ready.Subtract(g)
		}
	}
}

// emit admits a derived tuple produced outside a batch context (idle
// harvesting of async modules, flush). The done set inherited comes from
// the tuple's own lineage, stamped when the producer consumed its input.
func (e *Eddy) emit(t *tuple.Tuple) {
	e.enqueueDerived(t, nil)
}

// idleModules gives asynchronous modules a chance to complete parked
// work. Reports whether any module made progress.
func (e *Eddy) idleModules() (bool, error) {
	worked := false
	for _, m := range e.modules {
		if idler, ok := m.(operator.Idler); ok {
			w, err := idler.Idle(e.emit)
			if err != nil {
				return worked, err
			}
			worked = worked || w
		}
	}
	return worked, nil
}

// RunUntilIdle steps until no queued work remains and no module reports
// idle progress. maxSteps bounds runaway loops (0 = 1<<30).
func (e *Eddy) RunUntilIdle(maxSteps int) error {
	if maxSteps <= 0 {
		maxSteps = 1 << 30
	}
	for i := 0; i < maxSteps; i++ {
		worked, err := e.Step()
		if err != nil {
			return err
		}
		if !worked {
			return nil
		}
	}
	return fmt.Errorf("eddy: exceeded %d steps", maxSteps)
}

// Flush ends the input streams: pending admission batches are routed,
// async modules drained, and window state flushed (the Eddy "shuts down
// its connected modules when the end of all of its input streams has
// been reached").
func (e *Eddy) Flush() error {
	if err := e.RunUntilIdle(0); err != nil {
		return err
	}
	// Drain async modules that may still hold in-flight work.
	for _, m := range e.modules {
		if ai, ok := m.(*operator.AsyncIndex); ok {
			if err := ai.Drain(e.emit, 5*time.Second); err != nil {
				return err
			}
		}
	}
	if err := e.RunUntilIdle(0); err != nil {
		return err
	}
	for _, m := range e.modules {
		if fl, ok := m.(operator.Flusher); ok {
			if err := fl.Flush(e.emit); err != nil {
				return err
			}
		}
	}
	return e.RunUntilIdle(0)
}
