package eddy

import (
	"sync/atomic"
	"testing"
	"time"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/operator"
	"telegraphcq/internal/tuple"
)

// An asynchronous index AM inside the eddy: probes park in the
// rendezvous buffer, completions surface through idle cycles, and Flush
// drains in-flight lookups — the [GW00] pattern of §2.2 running under
// adaptive routing.
func TestEddyWithAsyncIndex(t *testing.T) {
	tSchema := tuple.NewSchema(
		tuple.Column{Source: "T", Name: "sym", Kind: tuple.KindString},
		tuple.Column{Source: "T", Name: "rating", Kind: tuple.KindInt},
	)
	table := map[string][]*tuple.Tuple{
		"MSFT": {tuple.New(tSchema, tuple.String("MSFT"), tuple.Int(5))},
		"IBM":  {tuple.New(tSchema, tuple.String("IBM"), tuple.Int(3))},
	}
	var lookups atomic.Int64 // probes run on the index's goroutines
	ai := operator.NewAsyncIndex("idx", "T", expr.Col("S", "sym"), "sym",
		func(k tuple.Value) ([]*tuple.Tuple, error) {
			lookups.Add(1)
			return table[k.S], nil
		}, 2*time.Millisecond)
	// A filter on the joined result keeps routing non-trivial.
	f := operator.NewFilter("f", expr.Bin(expr.OpGt, expr.Col("T", "rating"), expr.Lit(tuple.Int(4))))

	var out []*tuple.Tuple
	e := New([]operator.Module{ai, f}, NewLottery(2), func(x *tuple.Tuple) {
		if x.Schema.HasSource("T") {
			out = append(out, x)
		}
	})
	sSchema := tuple.NewSchema(tuple.Column{Source: "S", Name: "sym", Kind: tuple.KindString})
	for i, sym := range []string{"MSFT", "IBM", "MSFT", "NONE", "IBM"} {
		tp := tuple.New(sSchema, tuple.String(sym))
		tp.TS = tuple.Timestamp{Seq: int64(i) + 1}
		if err := e.Admit(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	// Matches: MSFT(rating 5) passes the filter ×2; IBM(3) filtered out.
	if len(out) != 2 {
		t.Fatalf("outputs = %d, want 2", len(out))
	}
	// The cache bounds remote lookups to distinct keys.
	if n := lookups.Load(); n != 3 {
		t.Fatalf("remote lookups = %d, want 3 (MSFT, IBM, NONE)", n)
	}
	if ai.Pending() != 0 {
		t.Fatalf("pending after flush = %d", ai.Pending())
	}
}
