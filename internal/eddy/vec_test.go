package eddy

import (
	"fmt"
	"sort"
	"testing"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/operator"
	"telegraphcq/internal/tuple"
)

// runFiltered drives 200 rows through a filter eddy with the given
// vectorization/batching knobs and returns the sorted output keys.
func runFiltered(t *testing.T, pred expr.Expr, vectorized bool, batch int) ([]int64, Stats) {
	t.Helper()
	f := operator.NewFilter("f", pred)
	var keys []int64
	e := New([]operator.Module{f}, NewFixed([]int{0}), func(x *tuple.Tuple) {
		keys = append(keys, x.Values[0].I)
	})
	e.BatchSize = batch
	e.Vectorized = vectorized
	for i := int64(0); i < 200; i++ {
		if err := e.Admit(row("S", i+1, i, float64(i%17))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys, e.Stats()
}

// The vectorized fast path must be invisible: same outputs, same
// admitted/output/dropped accounting as the per-tuple route, across
// batch sizes, both for clean predicates and for predicates that force
// the interpreter-replay fallback mid-batch.
func TestVectorizedRouteIsInvisible(t *testing.T) {
	preds := map[string]expr.Expr{
		"clean": expr.Bin(expr.OpAnd,
			expr.Bin(expr.OpGt, expr.Col("S", "v"), expr.Lit(tuple.Float(3))),
			expr.Bin(expr.OpLt, expr.Col("S", "v"), expr.Lit(tuple.Float(12)))),
		// v=8 lanes divide by zero on the eagerly-evaluated right arm,
		// aborting every vector batch; the interpreter short-circuits
		// past it (left arm true), so the per-tuple replay is clean.
		// Vectorized and plain runs must still agree exactly.
		"fallback": expr.Bin(expr.OpOr,
			expr.Bin(expr.OpEq, expr.Col("S", "v"), expr.Lit(tuple.Float(8))),
			expr.Bin(expr.OpGt,
				expr.Bin(expr.OpDiv, expr.Lit(tuple.Float(10)),
					expr.Bin(expr.OpSub, expr.Col("S", "v"), expr.Lit(tuple.Float(8)))),
				expr.Lit(tuple.Float(1)))),
	}
	for name, pred := range preds {
		t.Run(name, func(t *testing.T) {
			wantKeys, wantStats := runFiltered(t, pred, false, 1)
			for _, batch := range []int{16, 64, 256} {
				gotKeys, gotStats := runFiltered(t, pred, true, batch)
				if fmt.Sprint(gotKeys) != fmt.Sprint(wantKeys) {
					t.Fatalf("batch=%d: outputs %v, want %v", batch, gotKeys, wantKeys)
				}
				if gotStats.Admitted != wantStats.Admitted ||
					gotStats.Outputs != wantStats.Outputs ||
					gotStats.Dropped != wantStats.Dropped {
					t.Fatalf("batch=%d: stats %+v, want %+v", batch, gotStats, wantStats)
				}
			}
		})
	}
}

// Vectorized routing must keep feeding the policy: a lottery observing
// per-lane outcomes through routeVec should still learn selectivities.
func TestVectorizedRouteObservesPolicy(t *testing.T) {
	f := operator.NewFilter("f", expr.Bin(expr.OpGt, expr.Col("S", "v"), expr.Lit(tuple.Float(100))))
	e := New([]operator.Module{f}, NewLottery(1), func(*tuple.Tuple) {})
	e.BatchSize = 64
	e.Vectorized = true
	for i := int64(0); i < 512; i++ {
		if err := e.Admit(row("S", i+1, i, float64(i%10))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	ms := e.ModuleStatsSnapshot()
	if len(ms) != 1 || ms[0].Routed != 512 || ms[0].Passed != 0 {
		t.Fatalf("module stats = %+v, want 512 routed, 0 passed", ms)
	}
	if e.Stats().Dropped != 512 {
		t.Fatalf("dropped = %d, want 512", e.Stats().Dropped)
	}
}
