// Package eddy implements the Eddy adaptive tuple router (Avnur &
// Hellerstein, SIGMOD 2000; §2.2 of the TelegraphCQ paper) together with
// the routing policies and the "adapting adaptivity" knobs of §4.3
// (tuple batching and operator fixing).
//
// An Eddy intercepts tuples flowing into and out of a set of partially
// commutative modules and chooses, tuple by tuple, the order they take.
// Modules earn routing preference through a ticket scheme: a module
// receives a ticket for each tuple routed to it and loses one for each
// tuple it returns, so selective, productive modules are favored — with
// no cost model or statistics required in advance.
package eddy

import (
	"math/rand"
	"sort"

	"telegraphcq/internal/bitset"
	"telegraphcq/internal/operator"
)

// Policy decides routing order. Implementations are not goroutine-safe;
// each Eddy owns one policy (an Eddy is single-threaded inside one
// Execution Object).
type Policy interface {
	// Choose picks the next module from the ready set (never empty).
	Choose(ready *bitset.Set) int
	// Observe reports the outcome of routing one tuple (or one batch
	// member) to module m. produced counts tuples returned to the Eddy:
	// emissions plus the routed tuple itself if it passed through.
	Observe(m int, outcome operator.Outcome, produced int, costNs int64)
}

// ---------------------------------------------------------------- fixed

// Fixed routes every tuple in one predetermined order — the static-plan
// baseline the adaptivity experiments compare against.
type Fixed struct {
	order []int
	rank  map[int]int
}

// NewFixed builds a fixed policy routing in the given module order.
func NewFixed(order []int) *Fixed {
	r := make(map[int]int, len(order))
	for i, m := range order {
		r[m] = i
	}
	return &Fixed{order: order, rank: r}
}

// Choose implements Policy: the earliest ready module in the fixed order.
func (f *Fixed) Choose(ready *bitset.Set) int {
	best, bestRank := -1, int(^uint(0)>>1)
	ready.ForEach(func(m int) bool {
		r, ok := f.rank[m]
		if !ok {
			r = len(f.order) + m // unknown modules go last, stable
		}
		if r < bestRank {
			best, bestRank = m, r
		}
		return true
	})
	return best
}

// Observe implements Policy (no adaptation).
func (f *Fixed) Observe(int, operator.Outcome, int, int64) {}

// --------------------------------------------------------------- random

// Random routes uniformly among ready modules — the "no information"
// baseline.
type Random struct{ rng *rand.Rand }

// NewRandom builds a random policy with a deterministic seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Choose implements Policy.
func (r *Random) Choose(ready *bitset.Set) int {
	n := ready.Count()
	if n == 0 {
		return -1
	}
	k := r.rng.Intn(n)
	choice := -1
	i := 0
	ready.ForEach(func(m int) bool {
		if i == k {
			choice = m
			return false
		}
		i++
		return true
	})
	return choice
}

// Observe implements Policy (no adaptation).
func (r *Random) Observe(int, operator.Outcome, int, int64) {}

// -------------------------------------------------------------- lottery

// Lottery is the ticket-based scheme of [AH00] with exponential decay so
// the router keeps adapting as selectivities drift, plus optional cost
// normalization so expensive modules (slow filters, remote indexes) are
// deferred the way back-pressure defers them in the asynchronous setting.
type Lottery struct {
	rng     *rand.Rand
	tickets map[int]float64
	cost    map[int]float64 // EWMA of cost per routed tuple, ns
	// Decay multiplies all tickets after each window of observations;
	// lower values forget faster. Default 0.99 per observation.
	Decay float64
	// CostAware divides ticket weight by observed per-tuple cost.
	CostAware bool
	// Explore is the probability of routing uniformly at random, keeping
	// fresh observations flowing for all modules. Default 0.05.
	Explore float64
	// CostAlpha is the EWMA weight for cost observations (default 0.05;
	// raise it to track fast-drifting module costs).
	CostAlpha float64
	// Greedy picks the highest-weight module deterministically instead
	// of sampling proportionally; Explore still injects random routes so
	// observations keep flowing ("winner take all" routing).
	Greedy bool
}

// NewLottery builds a lottery policy with a deterministic seed.
func NewLottery(seed int64) *Lottery {
	return &Lottery{
		rng:       rand.New(rand.NewSource(seed)),
		tickets:   map[int]float64{},
		cost:      map[int]float64{},
		Decay:     0.99,
		Explore:   0.05,
		CostAlpha: 0.05,
	}
}

func (l *Lottery) weight(m int) float64 {
	w := l.tickets[m] + 1 // +1 keeps every ready module in the lottery
	if l.CostAware {
		if c := l.cost[m]; c > 0 {
			w /= 1 + c/1000 // cost in microseconds softens the division
		}
	}
	return w
}

// Choose implements Policy: lottery sampling by ticket weight.
func (l *Lottery) Choose(ready *bitset.Set) int {
	if l.rng.Float64() < l.Explore {
		n := ready.Count()
		if n == 0 {
			return -1
		}
		k := l.rng.Intn(n)
		choice := -1
		i := 0
		ready.ForEach(func(m int) bool {
			if i == k {
				choice = m
				return false
			}
			i++
			return true
		})
		return choice
	}
	if l.Greedy {
		best, bestW := -1, -1.0
		ready.ForEach(func(m int) bool {
			if w := l.weight(m); w > bestW {
				best, bestW = m, w
			}
			return true
		})
		return best
	}
	total := 0.0
	ready.ForEach(func(m int) bool {
		total += l.weight(m)
		return true
	})
	if total <= 0 {
		return ready.Next(0)
	}
	x := l.rng.Float64() * total
	choice := -1
	ready.ForEach(func(m int) bool {
		choice = m
		x -= l.weight(m)
		return x >= 0
	})
	return choice
}

// Observe implements Policy: +1 ticket for consuming, -1 per produced
// tuple, exponential decay, cost EWMA.
func (l *Lottery) Observe(m int, outcome operator.Outcome, produced int, costNs int64) {
	t := l.tickets[m]*l.Decay + 1 - float64(produced)
	if t < 0 {
		t = 0
	}
	l.tickets[m] = t
	alpha := l.CostAlpha
	if alpha <= 0 {
		alpha = 0.05
	}
	l.cost[m] = l.cost[m]*(1-alpha) + float64(costNs)*alpha
}

// Tickets exposes the current ticket count (experiments plot it).
func (l *Lottery) Tickets(m int) float64 { return l.tickets[m] }

// --------------------------------------------------------------- ranker

// Ranker is implemented by policies that can order the whole ready set
// with one decision. Operator fixing (§4.3) uses it to route a batch
// through several modules per decision.
type Ranker interface {
	// Rank appends the ready modules to out in routing-preference order.
	Rank(ready *bitset.Set, out []int) []int
}

// Rank implements Ranker for Fixed: the fixed order, ready-filtered.
// A module repeated in the configured order still ranks once.
func (f *Fixed) Rank(ready *bitset.Set, out []int) []int {
	emitted := map[int]bool{}
	for _, m := range f.order {
		if ready.Contains(m) && !emitted[m] {
			out = append(out, m)
			emitted[m] = true
		}
	}
	ready.ForEach(func(m int) bool {
		if _, known := f.rank[m]; !known {
			out = append(out, m)
		}
		return true
	})
	return out
}

// Rank implements Ranker for Random: a shuffle of the ready set.
func (r *Random) Rank(ready *bitset.Set, out []int) []int {
	start := len(out)
	out = append(out, ready.Indices()...)
	r.rng.Shuffle(len(out)-start, func(i, j int) {
		out[start+i], out[start+j] = out[start+j], out[start+i]
	})
	return out
}

// Rank implements Ranker for Lottery: ready modules by descending weight
// (one decision's worth of preference; ties broken by index).
func (l *Lottery) Rank(ready *bitset.Set, out []int) []int {
	start := len(out)
	out = append(out, ready.Indices()...)
	sub := out[start:]
	sort.SliceStable(sub, func(i, j int) bool {
		return l.weight(sub[i]) > l.weight(sub[j])
	})
	return out
}
