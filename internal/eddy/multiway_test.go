package eddy

import (
	"math/rand"
	"testing"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/operator"
	"telegraphcq/internal/stem"
	"telegraphcq/internal/tuple"
)

// Multiway join correctness is the sharpest test of the eddy's routing
// bookkeeping: build-at-admission + arrival-ordered probing + inherited
// done sets must produce each k-way combination exactly once, for every
// policy and interleaving.

func buildThreeWayEddy(policy Policy, out *[]*tuple.Tuple) (*Eddy, []*operator.StemModule) {
	// Join graph S—T—R: S.k = T.k, T.j = R.j.
	jfST := expr.JoinFactor{Op: expr.OpEq, Left: expr.Col("S", "k"), Right: expr.Col("T", "k")}
	jfTR := expr.JoinFactor{Op: expr.OpEq, Left: expr.Col("T", "j"), Right: expr.Col("R", "j")}

	sS := operator.NewStemModule("S", stem.New("S", expr.Col("S", "k")),
		[]expr.JoinFactor{jfST}, expr.Col("S", "k"))
	sT := operator.NewStemModule("T", stem.New("T", expr.Col("T", "k")),
		[]expr.JoinFactor{jfST, jfTR}, expr.Col("T", "k"))
	sR := operator.NewStemModule("R", stem.New("R", expr.Col("R", "j")),
		[]expr.JoinFactor{jfTR}, expr.Col("R", "j"))
	e := New([]operator.Module{sS, sT, sR}, policy, func(x *tuple.Tuple) {
		if x.Schema.HasSource("S") && x.Schema.HasSource("T") && x.Schema.HasSource("R") {
			*out = append(*out, x)
		}
	})
	return e, []*operator.StemModule{sS, sT, sR}
}

func sTuple(seq, k int64) *tuple.Tuple {
	sc := tuple.NewSchema(
		tuple.Column{Source: "S", Name: "k", Kind: tuple.KindInt},
		tuple.Column{Source: "S", Name: "sid", Kind: tuple.KindInt},
	)
	t := tuple.New(sc, tuple.Int(k), tuple.Int(seq))
	t.TS = tuple.Timestamp{Seq: seq}
	return t
}

func tTuple(seq, k, j int64) *tuple.Tuple {
	sc := tuple.NewSchema(
		tuple.Column{Source: "T", Name: "k", Kind: tuple.KindInt},
		tuple.Column{Source: "T", Name: "j", Kind: tuple.KindInt},
		tuple.Column{Source: "T", Name: "tid", Kind: tuple.KindInt},
	)
	t := tuple.New(sc, tuple.Int(k), tuple.Int(j), tuple.Int(seq))
	t.TS = tuple.Timestamp{Seq: seq}
	return t
}

func rTuple(seq, j int64) *tuple.Tuple {
	sc := tuple.NewSchema(
		tuple.Column{Source: "R", Name: "j", Kind: tuple.KindInt},
		tuple.Column{Source: "R", Name: "rid", Kind: tuple.KindInt},
	)
	t := tuple.New(sc, tuple.Int(j), tuple.Int(seq))
	t.TS = tuple.Timestamp{Seq: seq}
	return t
}

func TestThreeWayJoinExactlyOnce(t *testing.T) {
	for name, mk := range map[string]func() Policy{
		"fixed":   func() Policy { return NewFixed([]int{0, 1, 2}) },
		"reverse": func() Policy { return NewFixed([]int{2, 1, 0}) },
		"random":  func() Policy { return NewRandom(3) },
		"lottery": func() Policy { return NewLottery(3) },
	} {
		var out []*tuple.Tuple
		e, _ := buildThreeWayEddy(mk(), &out)
		// 2 S rows (k=1), 2 T rows (k=1, j∈{1,2}), 2 R rows (j=1, j=2):
		// every (s, t, r with r.j == t.j) combines: 2 × 2 × 1 each = 4.
		_ = e.Admit(sTuple(1, 1))
		_ = e.Admit(tTuple(1, 1, 1))
		_ = e.Admit(rTuple(1, 1))
		_ = e.Admit(sTuple(2, 1))
		_ = e.Admit(rTuple(2, 2))
		_ = e.Admit(tTuple(2, 1, 2))
		if err := e.RunUntilIdle(0); err != nil {
			t.Fatal(err)
		}
		if len(out) != 4 {
			t.Fatalf("%s: triples = %d, want 4", name, len(out))
		}
		seen := map[string]bool{}
		for _, x := range out {
			key := x.String()
			if seen[key] {
				t.Fatalf("%s: duplicate triple %s", name, key)
			}
			seen[key] = true
		}
	}
}

// Property: random 3-way workloads with interleaved processing match the
// nested-loop ground truth under every policy.
func TestThreeWayJoinAgainstNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		type trow struct{ k, j int64 }
		var ss []int64
		var ts []trow
		var rs []int64
		policies := []Policy{NewFixed([]int{0, 1, 2}), NewRandom(int64(trial)), NewLottery(int64(trial))}
		pol := policies[trial%len(policies)]
		var out []*tuple.Tuple
		e, _ := buildThreeWayEddy(pol, &out)
		seq := int64(0)
		for op := 0; op < 25; op++ {
			seq++
			switch rng.Intn(3) {
			case 0:
				k := int64(rng.Intn(3))
				ss = append(ss, k)
				_ = e.Admit(sTuple(seq, k))
			case 1:
				k, j := int64(rng.Intn(3)), int64(rng.Intn(3))
				ts = append(ts, trow{k, j})
				_ = e.Admit(tTuple(seq, k, j))
			case 2:
				j := int64(rng.Intn(3))
				rs = append(rs, j)
				_ = e.Admit(rTuple(seq, j))
			}
			// Interleave processing with arrivals.
			if rng.Intn(2) == 0 {
				if err := e.RunUntilIdle(0); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := e.RunUntilIdle(0); err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, sk := range ss {
			for _, tr := range ts {
				if tr.k != sk {
					continue
				}
				for _, rj := range rs {
					if rj == tr.j {
						want++
					}
				}
			}
		}
		if len(out) != want {
			t.Fatalf("trial %d: triples = %d, want %d (S=%d T=%d R=%d)",
				trial, len(out), want, len(ss), len(ts), len(rs))
		}
	}
}

// Self-join via aliases: the same physical stream admitted under two
// names, band predicate.
func TestSelfJoinBandPredicate(t *testing.T) {
	jf := expr.JoinFactor{Op: expr.OpGt, Left: expr.Col("c2", "v"), Right: expr.Col("c1", "v")}
	s1 := operator.NewStemModule("c1", stem.New("c1", nil), []expr.JoinFactor{jf}, nil)
	s2 := operator.NewStemModule("c2", stem.New("c2", nil), []expr.JoinFactor{jf}, nil)
	var out []*tuple.Tuple
	e := New([]operator.Module{s1, s2}, NewFixed([]int{0, 1}), func(x *tuple.Tuple) {
		if x.Schema.HasSource("c1") && x.Schema.HasSource("c2") {
			out = append(out, x)
		}
	})
	mk := func(src string, seq int64, v float64) *tuple.Tuple {
		sc := tuple.NewSchema(tuple.Column{Source: src, Name: "v", Kind: tuple.KindFloat})
		t := tuple.New(sc, tuple.Float(v))
		t.TS = tuple.Timestamp{Seq: seq}
		return t
	}
	vals := []float64{3, 1, 4, 1, 5}
	for i, v := range vals {
		_ = e.Admit(mk("c1", int64(i+1), v))
		_ = e.Admit(mk("c2", int64(i+1), v))
	}
	if err := e.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, a := range vals {
		for _, b := range vals {
			if b > a {
				want++
			}
		}
	}
	if len(out) != want {
		t.Fatalf("band pairs = %d, want %d", len(out), want)
	}
}

// A 4-way chain exercises deeper cascades of inherited done sets.
func TestFourWayChainJoin(t *testing.T) {
	mkJF := func(l, lc, r, rc string) expr.JoinFactor {
		return expr.JoinFactor{Op: expr.OpEq, Left: expr.Col(l, lc), Right: expr.Col(r, rc)}
	}
	jAB := mkJF("A", "x", "B", "x")
	jBC := mkJF("B", "y", "C", "y")
	jCD := mkJF("C", "z", "D", "z")
	mods := []operator.Module{
		operator.NewStemModule("A", stem.New("A", expr.Col("A", "x")), []expr.JoinFactor{jAB}, expr.Col("A", "x")),
		operator.NewStemModule("B", stem.New("B", expr.Col("B", "x")), []expr.JoinFactor{jAB, jBC}, expr.Col("B", "x")),
		operator.NewStemModule("C", stem.New("C", expr.Col("C", "y")), []expr.JoinFactor{jBC, jCD}, expr.Col("C", "y")),
		operator.NewStemModule("D", stem.New("D", expr.Col("D", "z")), []expr.JoinFactor{jCD}, expr.Col("D", "z")),
	}
	var out []*tuple.Tuple
	e := New(mods, NewLottery(7), func(x *tuple.Tuple) {
		if len(x.Schema.Sources) == 4 {
			out = append(out, x)
		}
	})
	row := func(src string, seq int64, cols map[string]int64) *tuple.Tuple {
		var cs []tuple.Column
		var vs []tuple.Value
		for _, name := range []string{"x", "y", "z"} {
			if v, ok := cols[name]; ok {
				cs = append(cs, tuple.Column{Source: src, Name: name, Kind: tuple.KindInt})
				vs = append(vs, tuple.Int(v))
			}
		}
		t := tuple.New(tuple.NewSchema(cs...), vs...)
		t.TS = tuple.Timestamp{Seq: seq}
		return t
	}
	// 2 tuples per relation, all joining on value 1: 2^4 = 16 results.
	for i := int64(1); i <= 2; i++ {
		_ = e.Admit(row("A", i, map[string]int64{"x": 1}))
		_ = e.Admit(row("B", i, map[string]int64{"x": 1, "y": 1}))
		_ = e.Admit(row("C", i, map[string]int64{"y": 1, "z": 1}))
		_ = e.Admit(row("D", i, map[string]int64{"z": 1}))
	}
	if err := e.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	if len(out) != 16 {
		t.Fatalf("4-way results = %d, want 16", len(out))
	}
}
