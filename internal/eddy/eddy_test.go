package eddy

import (
	"testing"

	"telegraphcq/internal/bitset"
	"telegraphcq/internal/expr"
	"telegraphcq/internal/operator"
	"telegraphcq/internal/stem"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
)

func schemaFor(src string) *tuple.Schema {
	return tuple.NewSchema(
		tuple.Column{Source: src, Name: "k", Kind: tuple.KindInt},
		tuple.Column{Source: src, Name: "v", Kind: tuple.KindFloat},
	)
}

func row(src string, seq, k int64, v float64) *tuple.Tuple {
	t := tuple.New(schemaFor(src), tuple.Int(k), tuple.Float(v))
	t.TS = tuple.Timestamp{Seq: seq}
	return t
}

func TestEddySingleFilter(t *testing.T) {
	f := operator.NewFilter("f", expr.Bin(expr.OpGt, expr.Col("S", "v"), expr.Lit(tuple.Float(10))))
	var out []*tuple.Tuple
	e := New([]operator.Module{f}, NewFixed([]int{0}), func(x *tuple.Tuple) { out = append(out, x) })
	for i := int64(1); i <= 10; i++ {
		if err := e.Admit(row("S", i, i, float64(i*2))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 { // v = 12..20
		t.Fatalf("outputs = %d", len(out))
	}
	s := e.Stats()
	if s.Admitted != 10 || s.Outputs != 5 || s.Dropped != 5 {
		t.Fatalf("stats = %+v", s)
	}
}

func buildJoinEddy(policy Policy, out *[]*tuple.Tuple) *Eddy {
	jf := expr.JoinFactor{Op: expr.OpEq, Left: expr.Col("S", "k"), Right: expr.Col("T", "k")}
	smS := operator.NewStemModule("S", stem.New("S", expr.Col("S", "k")), []expr.JoinFactor{jf}, expr.Col("S", "k"))
	smT := operator.NewStemModule("T", stem.New("T", expr.Col("T", "k")), []expr.JoinFactor{jf}, expr.Col("T", "k"))
	return New([]operator.Module{smS, smT}, policy,
		func(x *tuple.Tuple) { *out = append(*out, x) })
}

func TestEddySymmetricJoin(t *testing.T) {
	var raw []*tuple.Tuple
	e := buildJoinEddy(NewFixed([]int{0, 1}), &raw)
	// Interleave S and T arrivals: keys 0..4 on each side, 2 T rows per key.
	for i := int64(0); i < 5; i++ {
		_ = e.Admit(row("S", i+1, i, 1))
		_ = e.Admit(row("T", i+1, i, 2))
		_ = e.Admit(row("T", i+6, i, 3))
	}
	if err := e.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	// Completed tuples spanning both sources are the join results.
	var joins []*tuple.Tuple
	for _, x := range raw {
		if x.Schema.HasSource("S") && x.Schema.HasSource("T") {
			joins = append(joins, x)
		}
	}
	if len(joins) != 10 { // 5 keys × 2 T rows
		t.Fatalf("join results = %d, want 10", len(joins))
	}
}

func TestEddyJoinMatchesNestedLoopUnderAnyPolicy(t *testing.T) {
	for name, mk := range map[string]func() Policy{
		"fixed":   func() Policy { return NewFixed([]int{1, 0}) },
		"random":  func() Policy { return NewRandom(42) },
		"lottery": func() Policy { return NewLottery(42) },
	} {
		var raw []*tuple.Tuple
		e := buildJoinEddy(mk(), &raw)
		sKeys := []int64{0, 1, 1, 2, 5}
		tKeys := []int64{1, 1, 2, 3, 5, 5}
		for i, k := range sKeys {
			_ = e.Admit(row("S", int64(i+1), k, 0))
		}
		for i, k := range tKeys {
			_ = e.Admit(row("T", int64(i+1), k, 0))
		}
		if err := e.RunUntilIdle(0); err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, a := range sKeys {
			for _, b := range tKeys {
				if a == b {
					want++
				}
			}
		}
		got := 0
		for _, x := range raw {
			if x.Schema.HasSource("S") && x.Schema.HasSource("T") {
				got++
			}
		}
		if got != want { // 2×2 + 1 + 2 = wanted
			t.Fatalf("%s: joins = %d, want %d", name, got, want)
		}
	}
}

func TestEddyFilterPlusJoin(t *testing.T) {
	jf := expr.JoinFactor{Op: expr.OpEq, Left: expr.Col("S", "k"), Right: expr.Col("T", "k")}
	smS := operator.NewStemModule("S", stem.New("S", expr.Col("S", "k")), []expr.JoinFactor{jf}, expr.Col("S", "k"))
	smT := operator.NewStemModule("T", stem.New("T", expr.Col("T", "k")), []expr.JoinFactor{jf}, expr.Col("T", "k"))
	f := operator.NewFilter("f", expr.Bin(expr.OpGt, expr.Col("S", "v"), expr.Lit(tuple.Float(5))))
	var out []*tuple.Tuple
	e := New([]operator.Module{smS, smT, f}, NewLottery(1), func(x *tuple.Tuple) {
		if x.Schema.HasSource("S") && x.Schema.HasSource("T") {
			out = append(out, x)
		}
	})
	// S rows: k=1 v=10 (passes), k=2 v=1 (fails). T rows: k=1, k=2.
	_ = e.Admit(row("S", 1, 1, 10))
	_ = e.Admit(row("S", 2, 2, 1))
	_ = e.Admit(row("T", 1, 1, 0))
	_ = e.Admit(row("T", 2, 2, 0))
	if err := e.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	// The S k=2 row fails the filter. Depending on routing order it may
	// have already joined — but the join result also carries S.v and is
	// itself filtered. Either way exactly the k=1 join must survive.
	if len(out) != 1 {
		t.Fatalf("outputs = %d", len(out))
	}
	ki, _ := out[0].Schema.ColumnIndex("S", "k")
	if out[0].Values[ki].I != 1 {
		t.Fatalf("wrong survivor: %v", out[0])
	}
}

func TestLotteryAdaptsToSelectivity(t *testing.T) {
	// Two commuting filters; f0 drops 90%, f1 drops 10%. The lottery
	// should route most tuples to the selective filter first.
	f0 := operator.NewFilter("sel", expr.Bin(expr.OpLt, expr.Col("S", "v"), expr.Lit(tuple.Float(10))))
	f1 := operator.NewFilter("loose", expr.Bin(expr.OpGe, expr.Col("S", "v"), expr.Lit(tuple.Float(-80))))
	pol := NewLottery(7)
	e := New([]operator.Module{f0, f1}, pol, func(*tuple.Tuple) {})
	for i := int64(0); i < 5000; i++ {
		_ = e.Admit(row("S", i+1, i, float64(i%100))) // 10% pass f0, 90%+ pass f1... v in 0..99
		if err := e.RunUntilIdle(0); err != nil {
			t.Fatal(err)
		}
	}
	// f0 (drops 90%) should be routed first for most tuples: its In count
	// should be close to the admitted count, f1's much lower.
	s0 := f0.ModuleStats().In
	s1 := f1.ModuleStats().In
	if s0 <= s1 {
		t.Fatalf("lottery did not favor the selective filter: sel=%d loose=%d", s0, s1)
	}
	// Routing both-first would give s1 ≈ 5000; adaptive routing should
	// route f1 only for survivors of f0 (≈500) plus exploration.
	if float64(s1) > 0.5*float64(s0) {
		t.Fatalf("weak adaptation: sel=%d loose=%d", s0, s1)
	}
}

func TestBatchingReducesChooseCalls(t *testing.T) {
	mk := func(batch int) Stats {
		f := operator.NewFilter("f", expr.Bin(expr.OpGt, expr.Col("S", "v"), expr.Lit(tuple.Float(-1))))
		e := New([]operator.Module{f}, NewLottery(3), func(*tuple.Tuple) {})
		e.BatchSize = batch
		for i := int64(0); i < 1000; i++ {
			_ = e.Admit(row("S", i+1, i, float64(i)))
		}
		if err := e.RunUntilIdle(0); err != nil {
			t.Fatal(err)
		}
		return e.Stats()
	}
	s1 := mk(1)
	s64 := mk(64)
	if s1.Outputs != 1000 || s64.Outputs != 1000 {
		t.Fatalf("outputs: %d, %d", s1.Outputs, s64.Outputs)
	}
	if s64.ChooseCalls*10 > s1.ChooseCalls {
		t.Fatalf("batching did not amortize: batch1=%d batch64=%d", s1.ChooseCalls, s64.ChooseCalls)
	}
}

func TestFixedHopsRoutesThroughMultipleModules(t *testing.T) {
	f0 := operator.NewFilter("a", expr.Bin(expr.OpGt, expr.Col("S", "v"), expr.Lit(tuple.Float(-1))))
	f1 := operator.NewFilter("b", expr.Bin(expr.OpGt, expr.Col("S", "v"), expr.Lit(tuple.Float(-2))))
	e := New([]operator.Module{f0, f1}, NewFixed([]int{0, 1}), func(*tuple.Tuple) {})
	e.FixedHops = 2
	for i := int64(0); i < 100; i++ {
		_ = e.Admit(row("S", i+1, i, 1))
	}
	if err := e.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Outputs != 100 {
		t.Fatalf("outputs = %d", s.Outputs)
	}
	// With 2 hops per decision, choose calls ≈ admitted (not 2×).
	if s.ChooseCalls > 110 {
		t.Fatalf("ChooseCalls = %d with FixedHops=2", s.ChooseCalls)
	}
}

func TestAlternativeGroupRoutesOnce(t *testing.T) {
	jf := expr.JoinFactor{Op: expr.OpEq, Left: expr.Col("S", "k"), Right: expr.Col("T", "k")}
	// Two alternative access paths to T: an indexed stem and a scan stem.
	a := operator.NewStemModule("T", stem.New("T", expr.Col("T", "k")), []expr.JoinFactor{jf}, expr.Col("T", "k"))
	b := operator.NewStemModule("T", stem.New("T", nil), []expr.JoinFactor{jf}, nil)
	a.SetGroup("joinT")
	b.SetGroup("joinT")
	var out []*tuple.Tuple
	e := New([]operator.Module{a, b}, NewRandom(5), func(x *tuple.Tuple) {
		if x.Schema.HasSource("S") && x.Schema.HasSource("T") {
			out = append(out, x)
		}
	})
	// Both stems hold the same T data (admission builds into both).
	for i := int64(0); i < 10; i++ {
		_ = e.Admit(row("T", i+1, i%5, 0))
	}
	for i := int64(0); i < 100; i++ {
		_ = e.Admit(row("S", i+1, i%5, 0))
	}
	if err := e.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	// Each S row matches exactly 2 T rows; with both paths live a double
	// visit would double the results.
	if len(out) != 200 {
		t.Fatalf("join results = %d, want 200", len(out))
	}
	sa, sb := a.ModuleStats().In, b.ModuleStats().In
	if sa+sb != 100 {
		t.Fatalf("alternative group visits = %d + %d, want 100 total", sa, sb)
	}
	if sa == 0 || sb == 0 {
		t.Fatalf("random policy never used one path: %d, %d", sa, sb)
	}
}

// bounceModule bounces each tuple a fixed number of times before passing.
type bounceModule struct {
	n     int
	seen  map[*tuple.Tuple]int
	total int
}

func (b *bounceModule) Name() string                   { return "bouncer" }
func (b *bounceModule) Interested(t *tuple.Tuple) bool { return true }
func (b *bounceModule) Process(t *tuple.Tuple, _ operator.Emit) (operator.Outcome, error) {
	if b.seen == nil {
		b.seen = map[*tuple.Tuple]int{}
	}
	b.seen[t]++
	b.total++
	if b.seen[t] <= b.n {
		return operator.Bounce, nil
	}
	return operator.Pass, nil
}

func TestBounceRetriesAndCompletes(t *testing.T) {
	bm := &bounceModule{n: 2}
	var out []*tuple.Tuple
	e := New([]operator.Module{bm}, NewFixed([]int{0}), func(x *tuple.Tuple) { out = append(out, x) })
	for i := int64(0); i < 5; i++ {
		_ = e.Admit(row("S", i+1, i, 0))
	}
	if err := e.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("outputs = %d", len(out))
	}
	if e.Stats().Bounced != 10 {
		t.Fatalf("bounced = %d", e.Stats().Bounced)
	}
}

func TestEddyWithWindowAggFlush(t *testing.T) {
	spec := window.Landmark("S", 1, 1, 3)
	agg, err := operator.NewWindowAgg("agg", "S", spec, 0, nil,
		[]operator.AggSpec{{Kind: operator.AggCount}}, operator.StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	var out []*tuple.Tuple
	e := New([]operator.Module{agg}, NewFixed([]int{0}), func(x *tuple.Tuple) { out = append(out, x) })
	for i := int64(1); i <= 3; i++ {
		_ = e.Admit(row("S", i, i, 0))
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	// Windows [1,1],[1,2] close on arrival; [1,3] closes at flush.
	if len(out) != 3 {
		t.Fatalf("agg results = %d", len(out))
	}
	if out[2].Values[1].I != 3 {
		t.Fatalf("final count = %v", out[2])
	}
}

func TestPoliciesChooseFromReadySet(t *testing.T) {
	ready := bitset.FromIndices(2, 5, 9)
	for name, p := range map[string]Policy{
		"fixed":   NewFixed([]int{9, 5, 2}),
		"random":  NewRandom(1),
		"lottery": NewLottery(1),
	} {
		for i := 0; i < 50; i++ {
			m := p.Choose(ready)
			if !ready.Contains(m) {
				t.Fatalf("%s chose %d outside ready set", name, m)
			}
		}
	}
	if NewFixed([]int{0}).Choose(bitset.FromIndices(3)) != 3 {
		t.Fatal("fixed must fall back to unknown ready modules")
	}
}

func TestLotteryTicketAccounting(t *testing.T) {
	l := NewLottery(1)
	// Module 0 consumes without producing (selective): tickets rise.
	for i := 0; i < 100; i++ {
		l.Observe(0, operator.Drop, 0, 100)
		l.Observe(1, operator.Pass, 1, 100)
	}
	if l.Tickets(0) <= l.Tickets(1) {
		t.Fatalf("tickets: selective=%v loose=%v", l.Tickets(0), l.Tickets(1))
	}
}

func TestEddyPendingAndFlushPartialBatch(t *testing.T) {
	f := operator.NewFilter("f", expr.Bin(expr.OpGt, expr.Col("S", "v"), expr.Lit(tuple.Float(-1))))
	var out []*tuple.Tuple
	e := New([]operator.Module{f}, NewFixed([]int{0}), func(x *tuple.Tuple) { out = append(out, x) })
	e.BatchSize = 100
	for i := int64(0); i < 5; i++ { // fewer than one batch
		_ = e.Admit(row("S", i+1, i, 1))
	}
	if e.Pending() == 0 {
		t.Fatal("partial batch not pending")
	}
	if err := e.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("outputs = %d", len(out))
	}
}
