package eddy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"telegraphcq/internal/bitset"
	"telegraphcq/internal/operator"
)

// Property: every policy's Choose always returns a member of the ready
// set, and Rank returns a permutation of it — for arbitrary ready sets
// and observation histories.
func TestQuickPolicyInvariants(t *testing.T) {
	f := func(members []uint8, obsSeed int64) bool {
		ready := bitset.New(0)
		for _, m := range members {
			ready.Add(int(m % 32))
		}
		if ready.Empty() {
			ready.Add(0)
		}
		for _, p := range []Policy{
			NewFixed([]int{3, 1, 4, 1, 5}),
			NewRandom(obsSeed),
			NewLottery(obsSeed),
		} {
			// Random observation history.
			r := rand.New(rand.NewSource(obsSeed))
			for i := 0; i < 50; i++ {
				p.Observe(r.Intn(32), operator.Outcome(r.Intn(4)), r.Intn(3), int64(r.Intn(10000)))
			}
			for i := 0; i < 10; i++ {
				if m := p.Choose(ready); !ready.Contains(m) {
					return false
				}
			}
			if rk, ok := p.(Ranker); ok {
				order := rk.Rank(ready, nil)
				if len(order) != ready.Count() {
					return false
				}
				seen := map[int]bool{}
				for _, m := range order {
					if !ready.Contains(m) || seen[m] {
						return false
					}
					seen[m] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLotteryGreedyPicksMaxWeight(t *testing.T) {
	l := NewLottery(1)
	l.Greedy = true
	l.Explore = 0 // fully deterministic
	// Module 2 accumulates tickets.
	for i := 0; i < 50; i++ {
		l.Observe(2, operator.Drop, 0, 10)
		l.Observe(5, operator.Pass, 2, 10)
	}
	ready := bitset.FromIndices(2, 5)
	for i := 0; i < 20; i++ {
		if got := l.Choose(ready); got != 2 {
			t.Fatalf("greedy chose %d", got)
		}
	}
}

func TestLotteryCostAwareDemotesExpensive(t *testing.T) {
	l := NewLottery(1)
	l.CostAware = true
	l.Greedy = true
	l.Explore = 0
	l.CostAlpha = 1
	// Same tickets, wildly different cost.
	for i := 0; i < 20; i++ {
		l.Observe(0, operator.Drop, 0, 10_000_000) // 10ms per tuple
		l.Observe(1, operator.Drop, 0, 1_000)      // 1µs per tuple
	}
	if got := l.Choose(bitset.FromIndices(0, 1)); got != 1 {
		t.Fatalf("cost-aware chose the expensive module %d", got)
	}
}

func TestLotteryDecayForgets(t *testing.T) {
	l := NewLottery(1)
	l.Decay = 0.5
	for i := 0; i < 100; i++ {
		l.Observe(0, operator.Drop, 0, 10)
	}
	high := l.Tickets(0)
	// Now the module keeps producing: tickets must fall quickly.
	for i := 0; i < 20; i++ {
		l.Observe(0, operator.Pass, 3, 10)
	}
	if l.Tickets(0) >= high/2 {
		t.Fatalf("tickets did not decay: %v -> %v", high, l.Tickets(0))
	}
}
