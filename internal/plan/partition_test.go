package plan

import (
	"strings"
	"testing"
)

// keyOf returns alias → key column for a shardable partition.
func keyOf(t *testing.T, p *Partition) map[string]string {
	t.Helper()
	if p == nil {
		t.Fatal("nil partition")
	}
	if p.Pinned {
		t.Fatalf("pinned (%s), want shardable", p.Reason)
	}
	out := map[string]string{}
	for _, k := range p.Keys {
		out[k.Alias] = k.KeyCol
	}
	return out
}

func TestPartitionSingleSourceAnyPlacement(t *testing.T) {
	p := mustPlan(t, `SELECT sym FROM stocks WHERE price > 10`).Partition
	if p.Pinned {
		t.Fatalf("pinned: %s", p.Reason)
	}
	if len(p.Keys) != 1 || p.Keys[0].KeyIdx != -1 {
		t.Fatalf("keys = %+v, want one any-placement key", p.Keys)
	}
}

func TestPartitionEquiJoinKeys(t *testing.T) {
	keys := keyOf(t, mustPlan(t,
		`SELECT s.price FROM stocks AS s, news AS n WHERE s.sym = n.headline`).Partition)
	if keys["s"] != "sym" || keys["n"] != "headline" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestPartitionPinsOrderSensitiveShapes(t *testing.T) {
	for _, tc := range []struct {
		sql    string
		reason string
	}{
		{`SELECT count(*) FROM stocks FOR (t = st; ; t += 1) { WindowIs(stocks, t - 2, t); }`, "aggregate"},
		{`SELECT sym FROM stocks LIMIT 3`, "LIMIT"},
		{`SELECT sym FROM stocks ORDER BY price`, "ORDER BY"},
		{`SELECT hq FROM companies`, "table"},
		{`SELECT s.sym FROM stocks AS s, news AS n`, "no equality join"},
		{`SELECT s.sym FROM stocks AS s, news AS n WHERE s.price > n.score`, "no equality join"},
	} {
		p := mustPlan(t, tc.sql).Partition
		if p == nil || !p.Pinned {
			t.Errorf("%s: not pinned (%+v)", tc.sql, p)
			continue
		}
		if !strings.Contains(p.Reason, tc.reason) {
			t.Errorf("%s: reason %q, want mention of %q", tc.sql, p.Reason, tc.reason)
		}
	}
}

func TestPartitionConflictingKeysPinned(t *testing.T) {
	// One alias used with two different key columns cannot hash-route.
	p := mustPlan(t,
		`SELECT a.sym FROM stocks AS a, stocks AS b, news AS n WHERE a.sym = b.sym AND a.price = n.score AND b.price = n.headline`).Partition
	if p == nil || !p.Pinned {
		t.Fatalf("conflicting keys not pinned: %+v", p)
	}
}

func TestPartitionSelfJoinDistinctKeys(t *testing.T) {
	// Self-join keyed differently per alias is shardable — the exchange
	// repartitions the alias whose key differs from ingress routing.
	keys := keyOf(t, mustPlan(t,
		`SELECT a.sym FROM stocks AS a, stocks AS b WHERE a.sym = b.price`).Partition)
	if keys["a"] != "sym" || keys["b"] != "price" {
		t.Fatalf("keys = %v", keys)
	}
}
