// Package plan binds parsed SELECT statements to the catalog and lowers
// them into adaptive plans: a cacq.Query registration (grouped-filter
// factors, SteM join factors, window spec, aggregates) plus the
// side-channel work the executor must do — feeding aliased streams,
// loading static tables into SteMs, and post-processing (DISTINCT,
// ORDER BY, LIMIT). This is the "parses, analyzes, and optimizes it into
// an adaptive plan" step of §4.2.1.
package plan

import (
	"fmt"

	"telegraphcq/internal/cacq"
	"telegraphcq/internal/catalog"
	"telegraphcq/internal/expr"
	"telegraphcq/internal/operator"
	"telegraphcq/internal/sql"
	"telegraphcq/internal/tuple"
)

// Feed tells the executor to deliver tuples of Stream into the dataflow
// under the name As (aliases make self-joins possible: the band-join
// example reads ClosingStockPrices as both c1 and c2).
type Feed struct {
	Stream string
	As     string
}

// TableLoad tells the executor to load a static table's rows as base
// tuples under the given alias before the query starts.
type TableLoad struct {
	Table string
	As    string
}

// Planned is an executable continuous query.
type Planned struct {
	CQ       *cacq.Query
	Feeds    []Feed
	Tables   []TableLoad
	Distinct bool
	OrderBy  []operator.SortKey
	Limit    int64
	// Partition is the shard-placement contract (see partition.go).
	Partition *Partition
}

// Planner lowers ASTs against a catalog.
type Planner struct {
	cat *catalog.Catalog
}

// New builds a planner.
func New(cat *catalog.Catalog) *Planner { return &Planner{cat: cat} }

// PlanSelect lowers one SELECT into a Planned query with the given id.
func (p *Planner) PlanSelect(s *sql.Select, id int) (*Planned, error) {
	if len(s.From) == 0 {
		return nil, fmt.Errorf("plan: no FROM sources")
	}
	// Resolve FROM items; map alias → catalog source.
	type fromSrc struct {
		item   sql.FromItem
		source *catalog.Source
		schema *tuple.Schema // renamed to the alias
	}
	var froms []fromSrc
	names := map[string]bool{}
	for _, f := range s.From {
		src, err := p.cat.Lookup(f.Source)
		if err != nil {
			return nil, fmt.Errorf("plan: %w", err)
		}
		name := f.Name()
		if names[name] {
			return nil, fmt.Errorf("plan: duplicate source name %q (alias needed)", name)
		}
		names[name] = true
		sch := src.Schema
		if name != f.Source {
			sch = sch.Rename(name)
		}
		froms = append(froms, fromSrc{item: f, source: src, schema: sch})
	}

	// qualify rewrites an unqualified column to its unique source.
	qualify := func(c *expr.ColumnRef) error {
		if c.Source != "" {
			if !names[c.Source] {
				return fmt.Errorf("plan: unknown source %q in %s", c.Source, c)
			}
			for _, f := range froms {
				if f.item.Name() == c.Source {
					if _, err := f.schema.ColumnIndex(c.Source, c.Name); err != nil {
						return fmt.Errorf("plan: %w", err)
					}
				}
			}
			return nil
		}
		found := ""
		for _, f := range froms {
			if _, err := f.schema.ColumnIndex(f.item.Name(), c.Name); err == nil {
				if found != "" {
					return fmt.Errorf("plan: column %q is ambiguous (%s, %s)", c.Name, found, f.item.Name())
				}
				found = f.item.Name()
			}
		}
		if found == "" {
			return fmt.Errorf("plan: unknown column %q", c.Name)
		}
		c.Source = found
		return nil
	}
	qualifyAll := func(e expr.Expr) error {
		for _, c := range expr.Columns(e, nil) {
			if c.Name == "*" {
				continue
			}
			if err := qualify(c); err != nil {
				return err
			}
		}
		return nil
	}

	if s.Where != nil {
		if err := qualifyAll(s.Where); err != nil {
			return nil, err
		}
	}
	for _, g := range s.GroupBy {
		if err := qualify(g); err != nil {
			return nil, err
		}
	}

	q := &cacq.Query{ID: id, Where: s.Where}
	for _, f := range froms {
		q.Sources = append(q.Sources, f.item.Name())
	}

	// SELECT list: aggregates vs scalars vs stars.
	var aggs []operator.AggSpec
	var selects []expr.Expr
	var selectNames []string
	for _, item := range s.Items {
		switch {
		case item.Agg != nil:
			if item.Agg.Arg != nil {
				if err := qualifyAll(item.Agg.Arg); err != nil {
					return nil, err
				}
			}
			aggs = append(aggs, *item.Agg)
		case item.Star:
			// "*" or "alias.*": expand to the matching schemas' columns.
			for _, f := range froms {
				if item.As != "" && f.item.Name() != item.As {
					continue
				}
				for _, col := range f.schema.Cols {
					selects = append(selects, expr.Col(col.Source, col.Name))
					selectNames = append(selectNames, col.Name)
				}
			}
			if item.As != "" && !names[item.As] {
				return nil, fmt.Errorf("plan: unknown source %q in %s.*", item.As, item.As)
			}
		default:
			if err := qualifyAll(item.Expr); err != nil {
				return nil, err
			}
			selects = append(selects, item.Expr)
			selectNames = append(selectNames, item.As)
		}
	}
	if len(aggs) > 0 {
		if len(selects) > 0 {
			// Scalars alongside aggregates must be grouping columns; the
			// WindowAgg output already carries the group columns.
			for _, e := range selects {
				c, ok := e.(*expr.ColumnRef)
				if !ok || !inGroupBy(c, s.GroupBy) {
					return nil, fmt.Errorf("plan: %s must appear in GROUP BY", e)
				}
			}
		}
		q.Aggs = aggs
		q.GroupBy = s.GroupBy
	} else {
		if len(s.GroupBy) > 0 {
			return nil, fmt.Errorf("plan: GROUP BY without aggregates")
		}
		q.Select = selects
		q.SelectNames = selectNames
	}

	// Window: validate WindowIs names against FROM names.
	if s.Window != nil {
		for _, d := range s.Window.Defs {
			if !names[d.Stream] {
				return nil, fmt.Errorf("plan: WindowIs over unknown source %q", d.Stream)
			}
		}
		if err := s.Window.Validate(); err != nil {
			return nil, fmt.Errorf("plan: %w", err)
		}
		q.Window = s.Window
	}
	if len(aggs) > 0 && q.Window == nil {
		return nil, fmt.Errorf("plan: aggregates require a FOR(...) window over the stream")
	}

	out := &Planned{CQ: q, Distinct: s.Distinct, Limit: s.Limit}
	for _, k := range s.OrderBy {
		// ORDER BY runs on the *output* rows (after projection or
		// aggregation), whose columns carry the query's own names —
		// keep references unqualified so they resolve there.
		out.OrderBy = append(out.OrderBy, operator.SortKey{Expr: k.Expr, Desc: k.Desc})
	}
	for _, f := range froms {
		switch f.source.Kind {
		case catalog.KindStream:
			out.Feeds = append(out.Feeds, Feed{Stream: f.item.Source, As: f.item.Name()})
		case catalog.KindTable:
			out.Tables = append(out.Tables, TableLoad{Table: f.item.Source, As: f.item.Name()})
		}
	}
	out.Partition = inferPartition(q, out, func(alias, col string) (int, bool) {
		for _, f := range froms {
			if f.item.Name() != alias {
				continue
			}
			idx, err := f.schema.ColumnIndex(alias, col)
			if err != nil {
				return -1, false
			}
			return idx, true
		}
		return -1, false
	})
	return out, nil
}

func inGroupBy(c *expr.ColumnRef, groupBy []*expr.ColumnRef) bool {
	for _, g := range groupBy {
		if g.Name == c.Name && (g.Source == c.Source || g.Source == "" || c.Source == "") {
			return true
		}
	}
	return false
}
