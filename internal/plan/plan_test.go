package plan

import (
	"testing"

	"telegraphcq/internal/catalog"
	"telegraphcq/internal/sql"
	"telegraphcq/internal/tuple"
)

func newCat(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	_, err := cat.CreateStream("stocks", []tuple.Column{
		{Name: "sym", Kind: tuple.KindString},
		{Name: "price", Kind: tuple.KindFloat},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cat.CreateStream("news", []tuple.Column{
		{Name: "headline", Kind: tuple.KindString},
		{Name: "score", Kind: tuple.KindFloat},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cat.CreateTable("companies", []tuple.Column{
		{Name: "sym", Kind: tuple.KindString},
		{Name: "hq", Kind: tuple.KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func planQ(t *testing.T, q string) (*Planned, error) {
	t.Helper()
	st, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return New(newCat(t)).PlanSelect(st.(*sql.Select), 1)
}

func mustPlan(t *testing.T, q string) *Planned {
	t.Helper()
	p, err := planQ(t, q)
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	return p
}

func TestQualifiesUnqualifiedColumns(t *testing.T) {
	p := mustPlan(t, `SELECT price FROM stocks WHERE sym = 'A'`)
	if p.CQ.Select[0].String() != "stocks.price" {
		t.Fatalf("select: %s", p.CQ.Select[0])
	}
	if got := p.CQ.Where.String(); got != "(stocks.sym = 'A')" {
		t.Fatalf("where: %s", got)
	}
}

func TestAmbiguousColumnRejected(t *testing.T) {
	if _, err := planQ(t, `SELECT sym FROM stocks, companies`); err == nil {
		t.Fatal("ambiguous column accepted")
	}
	// Qualified reference resolves.
	mustPlan(t, `SELECT stocks.sym FROM stocks, companies`)
}

func TestStarExpansion(t *testing.T) {
	p := mustPlan(t, `SELECT * FROM stocks`)
	if len(p.CQ.Select) != 2 || p.CQ.SelectNames[0] != "sym" || p.CQ.SelectNames[1] != "price" {
		t.Fatalf("star: %v names %v", p.CQ.Select, p.CQ.SelectNames)
	}
	p = mustPlan(t, `SELECT c.* FROM stocks, companies AS c WHERE stocks.sym = c.sym`)
	if len(p.CQ.Select) != 2 || p.CQ.Select[0].String() != "c.sym" {
		t.Fatalf("alias star: %v", p.CQ.Select)
	}
}

func TestFeedsAndTableLoads(t *testing.T) {
	p := mustPlan(t, `SELECT stocks.sym FROM stocks, companies WHERE stocks.sym = companies.sym`)
	if len(p.Feeds) != 1 || p.Feeds[0] != (Feed{Stream: "stocks", As: "stocks"}) {
		t.Fatalf("feeds: %+v", p.Feeds)
	}
	if len(p.Tables) != 1 || p.Tables[0] != (TableLoad{Table: "companies", As: "companies"}) {
		t.Fatalf("tables: %+v", p.Tables)
	}
}

func TestSelfJoinAliasesProduceTwoFeeds(t *testing.T) {
	p := mustPlan(t, `
		SELECT c1.sym FROM stocks AS c1, stocks AS c2
		WHERE c1.price > c2.price`)
	if len(p.Feeds) != 2 {
		t.Fatalf("feeds: %+v", p.Feeds)
	}
	if p.Feeds[0].Stream != "stocks" || p.Feeds[0].As != "c1" ||
		p.Feeds[1].Stream != "stocks" || p.Feeds[1].As != "c2" {
		t.Fatalf("feeds: %+v", p.Feeds)
	}
	if got := p.CQ.Footprint(); len(got) != 2 || got[0] != "c1" || got[1] != "c2" {
		t.Fatalf("footprint: %v", got)
	}
}

func TestAggregatePlanning(t *testing.T) {
	p := mustPlan(t, `
		SELECT sym, avg(price) FROM stocks GROUP BY sym
		for (t = ST; ; t += 5) { WindowIs(stocks, t - 4, t); }`)
	if len(p.CQ.Aggs) != 1 || len(p.CQ.GroupBy) != 1 {
		t.Fatalf("aggs: %+v groupby: %+v", p.CQ.Aggs, p.CQ.GroupBy)
	}
	if p.CQ.Window == nil {
		t.Fatal("window lost")
	}
}

func TestAggregateErrors(t *testing.T) {
	cases := []string{
		`SELECT avg(price) FROM stocks`, // no window
		`SELECT sym, avg(price) FROM stocks for (t=ST;;t++) { WindowIs(stocks, t, t) }`, // sym not grouped
		`SELECT sym FROM stocks GROUP BY sym`,                                           // group without agg
		`SELECT avg(price) FROM stocks for (t=ST;;t++) { WindowIs(nostream, t, t) }`,    // bad WindowIs
		`SELECT avg(price) FROM stocks for (t=ST; t<t; t++) { WindowIs(stocks, t, t) }`, // invalid loop (parser)
	}
	for _, q := range cases {
		st, err := sql.Parse(q)
		if err != nil {
			continue // parser-level rejection also fine
		}
		if _, err := New(newCat(t)).PlanSelect(st.(*sql.Select), 1); err == nil {
			t.Errorf("plan %q succeeded", q)
		}
	}
}

func TestUnknownSourcesAndColumns(t *testing.T) {
	for _, q := range []string{
		`SELECT x FROM nostream`,
		`SELECT nocol FROM stocks`,
		`SELECT bad.sym FROM stocks`,
		`SELECT sym FROM stocks, stocks`,
		`SELECT nope.* FROM stocks`,
	} {
		if _, err := planQ(t, q); err == nil {
			t.Errorf("plan %q succeeded", q)
		}
	}
}

func TestPostProcessingFlags(t *testing.T) {
	p := mustPlan(t, `SELECT DISTINCT sym FROM stocks ORDER BY sym DESC LIMIT 5`)
	if !p.Distinct || p.Limit != 5 || len(p.OrderBy) != 1 || !p.OrderBy[0].Desc {
		t.Fatalf("post: %+v", p)
	}
}
