// Partition-key inference: decide, per planned query, whether the query
// can run on hash-partitioned eddy shards and if so which column of each
// feed is its partition key. The rules are conservative — any shape whose
// result could depend on tuples meeting across partitions is pinned to
// the catch-all shard, which sees every tuple of its streams and is
// therefore semantically identical to a single-shard engine.
package plan

import (
	"fmt"

	"telegraphcq/internal/cacq"
	"telegraphcq/internal/expr"
)

// AliasKey is one feed's ingress partitioning requirement.
type AliasKey struct {
	Stream string // underlying catalog stream
	Alias  string // dataflow name (self-joins read one stream twice)
	// KeyIdx is the column index (in the stream's schema) whose value
	// hash-routes tuples of this alias; -1 means any placement works
	// (the query never matches this alias's tuples against each other).
	KeyIdx int
	KeyCol string // column name, "" when KeyIdx is -1
}

// Partition is a planned query's shard-placement contract.
type Partition struct {
	// Pinned queries run on the catch-all shard only (it receives every
	// tuple of their streams, so results match a single-shard engine).
	Pinned bool
	// Reason documents why the query was pinned ("" when shardable).
	Reason string
	// Keys has one entry per stream feed when the query is shardable.
	Keys []AliasKey
}

// pinned builds a pinned Partition with a reason.
func pinned(reason string) *Partition { return &Partition{Pinned: true, Reason: reason} }

// inferPartition classifies a lowered query. colIndex resolves (alias,
// column) to the column's index within the alias's (renamed) schema —
// positions are identical to the underlying stream schema.
func inferPartition(q *cacq.Query, out *Planned, colIndex func(alias, col string) (int, bool)) *Partition {
	// Static tables are loaded once into whichever engines host their
	// readers; replicating them across hash shards would duplicate
	// table-only results, so table readers are pinned wholesale.
	if len(out.Tables) > 0 {
		return pinned("reads static tables")
	}
	// Window aggregates close a window only when some tuple's instant
	// moves past its right edge; a shard seeing only its hash class of
	// tuples would stall closes, so every aggregate is pinned.
	if len(q.Aggs) > 0 {
		return pinned("windowed aggregate")
	}
	// LIMIT takes a prefix of the *global* arrival order, and ORDER BY's
	// Juggle reorders within a bounded window of it — across shards the
	// prefix (and the Juggle's view) would depend on egress drain timing,
	// not arrival. Found by the oracle shard sweep (seeds 42, 57).
	if out.Limit > 0 || len(out.OrderBy) > 0 {
		return pinned("order-sensitive delivery (LIMIT/ORDER BY)")
	}
	p := &Partition{}
	if len(q.Sources) == 1 {
		// Single-source selection/projection: per-tuple decidable, any
		// placement works.
		p.Keys = append(p.Keys, AliasKey{Stream: feedStream(out, q.Sources[0]), Alias: q.Sources[0], KeyIdx: -1})
		return p
	}

	// Multi-source: every source pair must be linked by an equality join
	// factor, and the factors must agree on a single key column per
	// alias. Then tuples that can ever join hash to the same shard, and
	// pairs split across shards could never have joined anyway. Band
	// joins, Cartesian pairs, and conflicting keys fall back to the
	// catch-all shard.
	keys := map[string]string{}    // alias → key column name
	pairEq := map[[2]string]bool{} // unordered source pair → has eq factor
	record := func(c *expr.ColumnRef) bool {
		if prev, ok := keys[c.Source]; ok && prev != c.Name {
			return false
		}
		keys[c.Source] = c.Name
		return true
	}
	for _, factor := range expr.Conjuncts(q.Where) {
		jf, ok := expr.AsJoinFactor(factor)
		if !ok || jf.Left.Source == "" || jf.Right.Source == "" || jf.Left.Source == jf.Right.Source {
			continue // single-variable factor or residual: placement-neutral
		}
		if jf.Op != expr.OpEq {
			continue // band factor alone cannot partition; the pair needs an eq factor too
		}
		if !record(jf.Left) || !record(jf.Right) {
			return pinned(fmt.Sprintf("conflicting partition keys on %s/%s", jf.Left.Source, jf.Right.Source))
		}
		pairEq[pairKey(jf.Left.Source, jf.Right.Source)] = true
	}
	for i, a := range q.Sources {
		for _, b := range q.Sources[i+1:] {
			if !pairEq[pairKey(a, b)] {
				return pinned(fmt.Sprintf("no equality join between %s and %s", a, b))
			}
		}
	}
	for _, alias := range q.Sources {
		col := keys[alias]
		idx, ok := colIndex(alias, col)
		if !ok {
			return pinned(fmt.Sprintf("cannot resolve partition key %s.%s", alias, col))
		}
		p.Keys = append(p.Keys, AliasKey{Stream: feedStream(out, alias), Alias: alias, KeyIdx: idx, KeyCol: col})
	}
	return p
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

func feedStream(out *Planned, alias string) string {
	for _, f := range out.Feeds {
		if f.As == alias {
			return f.Stream
		}
	}
	return alias
}
