// Connection-level fault injection: a net.Conn wrapper that consults
// the Injector at every I/O point, so cluster exchanges can be tested
// against the failures real networks produce — abrupt severs, half-open
// partitions where a peer silently stops answering, and delayed
// acknowledgements — deterministically, from a seed, instead of with
// ad-hoc sleeps and hand-closed sockets.
package chaos

import (
	"net"
	"sync"
)

// errInjected is the error surfaced by injected connection faults.
type errInjected struct{ what string }

func (e errInjected) Error() string { return "chaos: injected " + e.what }

// IsInjected reports whether err came from an injected connection fault
// (as opposed to a real network error).
func IsInjected(err error) bool {
	_, ok := err.(errInjected)
	return ok
}

// FaultyConn wraps a net.Conn with injector-driven faults. A nil
// injector makes every method a passthrough.
type FaultyConn struct {
	net.Conn
	in *Injector

	mu       sync.Mutex
	halfOpen bool
	dead     chan struct{} // closed on Close or injected sever
	once     sync.Once
}

// WrapConn wraps c; with a nil injector c is returned unchanged.
func WrapConn(c net.Conn, in *Injector) net.Conn {
	if in == nil {
		return c
	}
	return &FaultyConn{Conn: c, in: in, dead: make(chan struct{})}
}

func (f *FaultyConn) sever() {
	f.once.Do(func() {
		close(f.dead)
		f.Conn.Close()
	})
}

// Read consults the injector first: a drop severs the connection, a
// half-open transition makes this and every later read hang until the
// connection is closed — the silent peer a failure detector must catch
// by deadline, because the socket itself reports nothing.
func (f *FaultyConn) Read(p []byte) (int, error) {
	f.mu.Lock()
	ho := f.halfOpen
	if !ho && f.in.HalfOpenConn() {
		f.halfOpen = true
		ho = true
	}
	f.mu.Unlock()
	if ho {
		<-f.dead
		return 0, errInjected{"half-open partition"}
	}
	if f.in.DropConn() {
		f.sever()
		return 0, errInjected{"connection drop"}
	}
	return f.Conn.Read(p)
}

// Write severs on an injected drop; half-open connections keep writing
// successfully (the defining asymmetry of a half-open partition).
func (f *FaultyConn) Write(p []byte) (int, error) {
	select {
	case <-f.dead:
		return 0, errInjected{"connection drop"}
	default:
	}
	f.mu.Lock()
	ho := f.halfOpen
	f.mu.Unlock()
	if !ho && f.in.DropConn() {
		f.sever()
		return 0, errInjected{"connection drop"}
	}
	return f.Conn.Write(p)
}

// Close releases any read blocked in a half-open hang.
func (f *FaultyConn) Close() error {
	f.sever()
	return nil
}
