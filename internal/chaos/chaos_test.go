package chaos

import (
	"net"
	"testing"
	"time"
)

// Equal seeds must replay equal fault sequences — the property the
// E-series experiments rely on to regenerate a scenario.
func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, Disconnect: 0.2, Stall: 0.3, Corrupt: 0.25, QueueFull: 0.4}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 500; i++ {
		if a.Disconnect() != b.Disconnect() {
			t.Fatalf("disconnect decision diverged at step %d", i)
		}
		if (a.Stall() > 0) != (b.Stall() > 0) {
			t.Fatalf("stall decision diverged at step %d", i)
		}
		la, oka := a.CorruptLine("s,1,2,3")
		lb, okb := b.CorruptLine("s,1,2,3")
		if oka != okb || la != lb {
			t.Fatalf("corruption diverged at step %d: %q vs %q", i, la, lb)
		}
		if a.QueueFull() != b.QueueFull() {
			t.Fatalf("queue-full decision diverged at step %d", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Stats().Corrupted == 0 || a.Stats().Disconnects == 0 {
		t.Fatalf("expected some injected faults, got %+v", a.Stats())
	}
}

// A nil injector must be a total no-op so production paths can carry it
// unconditionally.
func TestNilInjector(t *testing.T) {
	var in *Injector
	if in.Disconnect() || in.Duplicate() || in.QueueFull() || in.PanicFor("s") {
		t.Fatal("nil injector injected a fault")
	}
	if d := in.Stall(); d != 0 {
		t.Fatalf("nil injector stalled for %v", d)
	}
	if line, ok := in.CorruptLine("a,b"); ok || line != "a,b" {
		t.Fatalf("nil injector corrupted line: %q", line)
	}
	if perm := in.ReorderPerm(8); perm != nil {
		t.Fatalf("nil injector reordered: %v", perm)
	}
	if in.Stats() != (Stats{}) {
		t.Fatal("nil injector has stats")
	}
}

func TestCorruptLineChangesBytes(t *testing.T) {
	in := New(Config{Seed: 1, Corrupt: 1})
	line := "stream,1,2.5,true"
	got, ok := in.CorruptLine(line)
	if !ok {
		t.Fatal("corruption did not fire at p=1")
	}
	if got == line {
		t.Fatalf("corrupted line unchanged: %q", got)
	}
}

func TestPanicForFiresOnce(t *testing.T) {
	in := New(Config{PanicStream: "ticks"})
	if in.PanicFor("other") {
		t.Fatal("panicked for wrong stream")
	}
	if !in.PanicFor("ticks") {
		t.Fatal("did not panic for configured stream")
	}
	if in.PanicFor("ticks") {
		t.Fatal("panicked twice")
	}
}

func TestParse(t *testing.T) {
	in, err := Parse("seed=42, drop=0.25, stall=0.1, stallms=7, corrupt=0.5, full=0.3, panic=ticks")
	if err != nil {
		t.Fatal(err)
	}
	if in.cfg.Seed != 42 || in.cfg.Disconnect != 0.25 || in.cfg.Stall != 0.1 ||
		in.cfg.StallFor != 7*time.Millisecond || in.cfg.Corrupt != 0.5 ||
		in.cfg.QueueFull != 0.3 || in.cfg.PanicStream != "ticks" {
		t.Fatalf("bad parsed config: %+v", in.cfg)
	}
	for _, bad := range []string{"nope", "frob=1", "drop=2", "drop=x", "seed=abc"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("spec %q should not parse", bad)
		}
	}
	// Empty spec parses to a no-op injector.
	if in, err := Parse(""); err != nil || in == nil {
		t.Fatalf("empty spec: %v", err)
	}
}

// Connection-level faults: drops sever both directions, half-open
// partitions hang reads while writes succeed, ack delays come from the
// seeded PRNG like every other decision.
func TestConnFaultParse(t *testing.T) {
	in, err := Parse("seed=3,conndrop=0.5,halfopen=0.25,ackdelay=1,ackdelayms=7")
	if err != nil {
		t.Fatal(err)
	}
	if d := in.DelayAck(); d != 7*time.Millisecond {
		t.Fatalf("DelayAck = %v, want 7ms", d)
	}
	saw := false
	for i := 0; i < 100; i++ {
		if in.DropConn() {
			saw = true
		}
	}
	if !saw || in.Stats().ConnDrops == 0 {
		t.Fatal("no conn drops at p=0.5 over 100 draws")
	}
	if _, err := Parse("conndrop=2"); err == nil {
		t.Fatal("out-of-range conndrop accepted")
	}
}

func TestConnFaultNilSafe(t *testing.T) {
	var in *Injector
	if in.DropConn() || in.HalfOpenConn() || in.DelayAck() != 0 {
		t.Fatal("nil injector injected a connection fault")
	}
}

func TestFaultyConnDrop(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	fc := WrapConn(client, New(Config{Seed: 1, ConnDrop: 1}))
	if _, err := fc.Write([]byte("x")); !IsInjected(err) {
		t.Fatalf("write err = %v, want injected drop", err)
	}
	// The sever closes the underlying conn: the peer sees EOF.
	buf := make([]byte, 1)
	if _, err := server.Read(buf); err == nil {
		t.Fatal("peer still readable after injected drop")
	}
	// Subsequent I/O stays dead.
	if _, err := fc.Read(buf); err == nil {
		t.Fatal("read succeeded on severed conn")
	}
}

func TestFaultyConnHalfOpen(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	fc := WrapConn(client, New(Config{Seed: 1, HalfOpen: 1}))

	// Writes keep succeeding while reads hang: serve the peer side.
	go func() {
		buf := make([]byte, 8)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()
	readErr := make(chan error, 1)
	go func() {
		_, err := fc.Read(make([]byte, 1))
		readErr <- err
	}()
	select {
	case err := <-readErr:
		t.Fatalf("half-open read returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := fc.Write([]byte("still-writable")); err != nil {
		t.Fatalf("half-open write failed: %v", err)
	}
	fc.Close()
	select {
	case err := <-readErr:
		if !IsInjected(err) {
			t.Fatalf("hung read err = %v, want injected", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not release the hung read")
	}
}

func TestFaultyConnNilInjectorPassthrough(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	if c := WrapConn(client, nil); c != client {
		t.Fatal("nil injector should return the conn unchanged")
	}
}
