// Package chaos is a deterministic, seedable fault injector for the
// "uncertain world" the paper designs against (§1.1: volatile network
// conditions, unreliable sources). Wrappers and Fjord producers consult
// an Injector at well-defined points — before reading a line, before
// enqueueing a tuple — and the injector decides, from a seeded PRNG,
// whether that point experiences a fault: a connection drop, a read
// stall, a corrupted row, a duplicated or reordered batch, a simulated
// queue-full burst, or an operator panic.
//
// Determinism matters: the E-series experiments need to regenerate the
// same volatile-network scenario run after run, and failing tests need
// to replay. All randomness flows from the configured seed; an Injector
// makes the same decisions in the same order for the same seed.
//
// A nil *Injector is a valid no-op: every decision method is nil-safe,
// so production paths carry a single pointer and pay one nil check when
// chaos is off.
package chaos

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config sets per-decision-point fault probabilities (all in [0,1]).
// The zero value injects nothing.
type Config struct {
	// Seed drives the PRNG; equal seeds replay equal fault sequences.
	Seed int64
	// Disconnect is the probability a connection-oriented wrapper drops
	// its connection at the next row boundary.
	Disconnect float64
	// Stall is the probability a read stalls for StallFor.
	Stall float64
	// StallFor is the injected stall duration (0 → 2ms).
	StallFor time.Duration
	// Corrupt is the probability a row's bytes are mangled in flight.
	Corrupt float64
	// Duplicate is the probability a delivered row is delivered again
	// (at-least-once sources re-sending after an ambiguous failure).
	Duplicate float64
	// Reorder is the probability a batch is delivered out of order.
	Reorder float64
	// QueueFull is the probability a Fjord producer observes a
	// (simulated) full queue, forcing its overflow policy to run.
	QueueFull float64
	// PanicStream, when non-empty, makes PanicFor report true once for
	// tuples of that stream — a deliberately faulty operator used to
	// prove panic quarantine.
	PanicStream string
	// ConnDrop is the probability a wrapped network connection is
	// severed (both directions, like a TCP RST) at its next I/O point.
	ConnDrop float64
	// HalfOpen is the probability a wrapped connection goes half-open
	// at its next read point: reads hang forever (the silent-peer
	// partition heartbeat deadlines exist to catch) while writes keep
	// succeeding.
	HalfOpen float64
	// AckDelay is the probability an acknowledgement send is delayed by
	// AckDelayFor before hitting the wire (late acks must be absorbed
	// by retry/dedup, never double-counted).
	AckDelay float64
	// AckDelayFor is the injected ack delay (0 → 20ms).
	AckDelayFor time.Duration
	// Churn is the probability a membership event is a node *leave*
	// rather than a *join* — the knob the cluster's join/leave storm
	// soak draws from to decide each round of its membership churn.
	Churn float64
}

// Stats counts faults actually injected, per kind.
type Stats struct {
	Disconnects int64
	Stalls      int64
	Corrupted   int64
	Duplicated  int64
	Reordered   int64
	QueueFulls  int64
	Panics      int64
	ConnDrops   int64
	HalfOpens   int64
	AckDelays   int64
	Churns      int64
}

// Injector makes fault decisions. Safe for concurrent use; decisions
// are serialized so a seed fully determines the fault sequence.
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	disconnects atomic.Int64
	stalls      atomic.Int64
	corrupted   atomic.Int64
	duplicated  atomic.Int64
	reordered   atomic.Int64
	queueFulls  atomic.Int64
	panics      atomic.Int64
	connDrops   atomic.Int64
	halfOpens   atomic.Int64
	ackDelays   atomic.Int64
	churns      atomic.Int64
}

// New builds an injector from a config.
func New(cfg Config) *Injector {
	if cfg.StallFor <= 0 {
		cfg.StallFor = 2 * time.Millisecond
	}
	if cfg.AckDelayFor <= 0 {
		cfg.AckDelayFor = 20 * time.Millisecond
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed + 1))}
}

// Parse builds an injector from a comma-separated spec, the -chaos flag
// syntax: "seed=42,drop=0.01,stall=0.005,stallms=5,corrupt=0.02,
// dup=0.01,reorder=0.01,full=0.1,panic=streamname". Unknown keys error.
func Parse(spec string) (*Injector, error) {
	cfg := Config{}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			return nil, fmt.Errorf("chaos: bad spec entry %q (want key=value)", kv)
		}
		key, val := strings.ToLower(strings.TrimSpace(kv[:eq])), strings.TrimSpace(kv[eq+1:])
		num := func() (float64, error) {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return 0, fmt.Errorf("chaos: %s wants a probability in [0,1], got %q", key, val)
			}
			return f, nil
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		case "drop", "disconnect":
			cfg.Disconnect, err = num()
		case "stall":
			cfg.Stall, err = num()
		case "stallms":
			var ms int64
			ms, err = strconv.ParseInt(val, 10, 64)
			cfg.StallFor = time.Duration(ms) * time.Millisecond
		case "corrupt":
			cfg.Corrupt, err = num()
		case "dup", "duplicate":
			cfg.Duplicate, err = num()
		case "reorder":
			cfg.Reorder, err = num()
		case "full", "queuefull":
			cfg.QueueFull, err = num()
		case "panic":
			cfg.PanicStream = val
		case "conndrop":
			cfg.ConnDrop, err = num()
		case "halfopen":
			cfg.HalfOpen, err = num()
		case "ackdelay":
			cfg.AckDelay, err = num()
		case "ackdelayms":
			var ms int64
			ms, err = strconv.ParseInt(val, 10, 64)
			cfg.AckDelayFor = time.Duration(ms) * time.Millisecond
		case "churn":
			cfg.Churn, err = num()
		default:
			return nil, fmt.Errorf("chaos: unknown spec key %q", key)
		}
		if err != nil {
			return nil, err
		}
	}
	return New(cfg), nil
}

// draw serializes one PRNG sample.
func (in *Injector) draw() float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64()
}

// decide is the nil-safe Bernoulli trial shared by all decision points.
func (in *Injector) decide(p float64, hits *atomic.Int64) bool {
	if in == nil || p <= 0 {
		return false
	}
	if in.draw() >= p {
		return false
	}
	hits.Add(1)
	return true
}

// Disconnect reports whether the wrapper should drop its connection now.
func (in *Injector) Disconnect() bool {
	if in == nil {
		return false
	}
	return in.decide(in.cfg.Disconnect, &in.disconnects)
}

// Stall returns a stall duration to sleep (0 = no stall injected).
func (in *Injector) Stall() time.Duration {
	if in == nil {
		return 0
	}
	if !in.decide(in.cfg.Stall, &in.stalls) {
		return 0
	}
	return in.cfg.StallFor
}

// CorruptLine possibly mangles one wire line; ok reports whether it did.
// Corruption is byte-level (a flipped separator and truncation) so the
// downstream parser sees the kind of damage a lossy link produces.
func (in *Injector) CorruptLine(line string) (string, bool) {
	if in == nil || !in.decide(in.cfg.Corrupt, &in.corrupted) {
		return line, false
	}
	if len(line) < 2 {
		return line + "\x00corrupt", true
	}
	cut := 1 + int(in.draw()*float64(len(line)-1))
	return strings.ReplaceAll(line[:cut], ",", ";") + "\x00", true
}

// Duplicate reports whether the current row should be delivered twice.
func (in *Injector) Duplicate() bool {
	if in == nil {
		return false
	}
	return in.decide(in.cfg.Duplicate, &in.duplicated)
}

// ReorderPerm returns a delivery permutation for a batch of n rows: nil
// when the batch should go out in order, else a seeded shuffle.
func (in *Injector) ReorderPerm(n int) []int {
	if in == nil || n < 2 || !in.decide(in.cfg.Reorder, &in.reordered) {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Perm(n)
}

// QueueFull reports whether a Fjord producer should treat its queue as
// full right now (a burst of back-pressure without real load).
func (in *Injector) QueueFull() bool {
	if in == nil {
		return false
	}
	return in.decide(in.cfg.QueueFull, &in.queueFulls)
}

// PanicFor reports whether processing a tuple of the named stream should
// panic. It fires at most once, so one query is quarantined and the rest
// of the run proceeds normally.
func (in *Injector) PanicFor(stream string) bool {
	if in == nil || in.cfg.PanicStream == "" || stream != in.cfg.PanicStream {
		return false
	}
	if in.panics.Add(1) > 1 {
		return false
	}
	return true
}

// DropConn reports whether a wrapped connection should be severed at
// its next I/O point.
func (in *Injector) DropConn() bool {
	if in == nil {
		return false
	}
	return in.decide(in.cfg.ConnDrop, &in.connDrops)
}

// HalfOpenConn reports whether a wrapped connection should go half-open
// (reads hang, writes succeed) at its next read point.
func (in *Injector) HalfOpenConn() bool {
	if in == nil {
		return false
	}
	return in.decide(in.cfg.HalfOpen, &in.halfOpens)
}

// DelayAck returns how long an acknowledgement send should be held
// before the write (0 = deliver immediately).
func (in *Injector) DelayAck() time.Duration {
	if in == nil {
		return 0
	}
	if !in.decide(in.cfg.AckDelay, &in.ackDelays) {
		return 0
	}
	return in.cfg.AckDelayFor
}

// Churn decides one membership event in a join/leave storm: true means
// a node leaves (is killed), false means one joins. Seeded like every
// other decision, so a churn soak replays the same storm per seed.
func (in *Injector) Churn() bool {
	if in == nil {
		return false
	}
	return in.decide(in.cfg.Churn, &in.churns)
}

// Stats snapshots the injected-fault counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return Stats{
		Disconnects: in.disconnects.Load(),
		Stalls:      in.stalls.Load(),
		Corrupted:   in.corrupted.Load(),
		Duplicated:  in.duplicated.Load(),
		Reordered:   in.reordered.Load(),
		QueueFulls:  in.queueFulls.Load(),
		Panics:      in.panics.Load(),
		ConnDrops:   in.connDrops.Load(),
		HalfOpens:   in.halfOpens.Load(),
		AckDelays:   in.ackDelays.Load(),
		Churns:      in.churns.Load(),
	}
}
