// Package workload generates the deterministic synthetic streams the
// experiments run on: the paper's ClosingStockPrices schema, a
// network-monitor flow stream (the intro's motivating application), and
// sensor readings with loss and burstiness. Selectivity-drift schedules
// reproduce the changing conditions the adaptive experiments need.
package workload

import (
	"fmt"
	"math/rand"

	"telegraphcq/internal/tuple"
)

// StockSchema is the paper's running example.
var StockSchema = tuple.NewSchema(
	tuple.Column{Source: "ClosingStockPrices", Name: "timestamp", Kind: tuple.KindInt},
	tuple.Column{Source: "ClosingStockPrices", Name: "stockSymbol", Kind: tuple.KindString},
	tuple.Column{Source: "ClosingStockPrices", Name: "closingPrice", Kind: tuple.KindFloat},
)

// Stocks produces n trading-day rows across the given symbols, prices
// following per-symbol random walks. Deterministic in seed.
type Stocks struct {
	Symbols []string
	Seed    int64
}

// DefaultSymbols are used when Symbols is empty.
var DefaultSymbols = []string{"MSFT", "IBM", "ORCL", "SUNW", "HWP", "INTC", "CSCO", "DELL"}

// Rows returns n rows. Row i has timestamp i/len(symbols)+1 (one row per
// symbol per day).
func (s Stocks) Rows(n int) []*tuple.Tuple {
	syms := s.Symbols
	if len(syms) == 0 {
		syms = DefaultSymbols
	}
	rng := rand.New(rand.NewSource(s.Seed + 7))
	price := make([]float64, len(syms))
	for i := range price {
		price[i] = 20 + rng.Float64()*80
	}
	out := make([]*tuple.Tuple, n)
	for i := 0; i < n; i++ {
		si := i % len(syms)
		day := int64(i/len(syms)) + 1
		price[si] *= 1 + (rng.Float64()-0.5)*0.04
		if price[si] < 1 {
			price[si] = 1
		}
		t := tuple.New(StockSchema,
			tuple.Int(day), tuple.String(syms[si]), tuple.Float(price[si]))
		t.TS = tuple.Timestamp{Seq: int64(i) + 1}
		out[i] = t
	}
	return out
}

// Values returns row i as a value slice (for System.Push).
func (s Stocks) Values(rows []*tuple.Tuple, i int) []tuple.Value { return rows[i].Values }

// FlowSchema models a network monitor's flow records.
var FlowSchema = tuple.NewSchema(
	tuple.Column{Source: "flows", Name: "src", Kind: tuple.KindString},
	tuple.Column{Source: "flows", Name: "dst", Kind: tuple.KindString},
	tuple.Column{Source: "flows", Name: "port", Kind: tuple.KindInt},
	tuple.Column{Source: "flows", Name: "bytes", Kind: tuple.KindFloat},
)

// Flows produces flow records with Zipf-ish skew across Hosts hosts:
// host h is drawn with probability ∝ 1/(h+1).
type Flows struct {
	Hosts int
	Ports []int64
	Seed  int64
}

// Rows returns n flow rows.
func (f Flows) Rows(n int) []*tuple.Tuple {
	hosts := f.Hosts
	if hosts <= 0 {
		hosts = 64
	}
	ports := f.Ports
	if len(ports) == 0 {
		ports = []int64{22, 53, 80, 443, 8080}
	}
	rng := rand.New(rand.NewSource(f.Seed + 13))
	// Precompute the skewed CDF.
	cdf := make([]float64, hosts)
	sum := 0.0
	for h := 0; h < hosts; h++ {
		sum += 1 / float64(h+1)
		cdf[h] = sum
	}
	pick := func() int {
		x := rng.Float64() * sum
		for h, c := range cdf {
			if x <= c {
				return h
			}
		}
		return hosts - 1
	}
	out := make([]*tuple.Tuple, n)
	for i := 0; i < n; i++ {
		t := tuple.New(FlowSchema,
			tuple.String(fmt.Sprintf("h%03d", pick())),
			tuple.String(fmt.Sprintf("h%03d", rng.Intn(hosts))),
			tuple.Int(ports[rng.Intn(len(ports))]),
			tuple.Float(float64(rng.Intn(150000))),
		)
		t.TS = tuple.Timestamp{Seq: int64(i) + 1}
		out[i] = t
	}
	return out
}

// SensorSchema models sensor readings.
var SensorSchema = tuple.NewSchema(
	tuple.Column{Source: "sensors", Name: "node", Kind: tuple.KindInt},
	tuple.Column{Source: "sensors", Name: "temp", Kind: tuple.KindFloat},
	tuple.Column{Source: "sensors", Name: "light", Kind: tuple.KindFloat},
)

// Sensors produces per-node readings with smooth drift plus occasional
// spikes (anomalies queries look for).
type Sensors struct {
	Nodes     int
	SpikeProb float64
	Seed      int64
}

// Reading returns the values for reading i (round-robin over nodes) —
// shaped for ingress.SensorProxy.Read.
func (s Sensors) Reading(node int, i int64) []tuple.Value {
	rng := rand.New(rand.NewSource(s.Seed + int64(node)*1009 + i))
	temp := 20 + 5*float64(node%7) + rng.Float64()
	if s.SpikeProb > 0 && rng.Float64() < s.SpikeProb {
		temp += 50 // anomaly
	}
	return []tuple.Value{
		tuple.Int(int64(node)),
		tuple.Float(temp),
		tuple.Float(rng.Float64() * 1000),
	}
}

// Rows returns n sensor rows round-robin across nodes.
func (s Sensors) Rows(n int) []*tuple.Tuple {
	nodes := s.Nodes
	if nodes <= 0 {
		nodes = 16
	}
	out := make([]*tuple.Tuple, n)
	for i := 0; i < n; i++ {
		vals := s.Reading(i%nodes, int64(i))
		t := tuple.New(SensorSchema, vals...)
		t.TS = tuple.Timestamp{Seq: int64(i) + 1}
		out[i] = t
	}
	return out
}

// DriftSchedule flips a stream property at a point: Phase(i, n) returns
// 0 for the first half of the run and 1 for the second — experiments use
// it to swap selectivities or costs mid-stream (E3/E9).
func DriftSchedule(i, n int) int {
	if i*2 < n {
		return 0
	}
	return 1
}

// UniformInts returns n deterministic ints in [0, k).
func UniformInts(n, k int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(k)
	}
	return out
}
