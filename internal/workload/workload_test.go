package workload

import (
	"testing"

	"telegraphcq/internal/tuple"
)

func TestStocksDeterministicAndShaped(t *testing.T) {
	a := Stocks{Seed: 3}.Rows(1000)
	b := Stocks{Seed: 3}.Rows(1000)
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("row %d differs across runs", i)
		}
	}
	// One row per symbol per day, positive prices, seq assigned.
	for i, r := range a {
		if r.TS.Seq != int64(i)+1 {
			t.Fatalf("seq at %d: %d", i, r.TS.Seq)
		}
		if r.Values[2].F <= 0 {
			t.Fatalf("price %v", r.Values[2])
		}
	}
	if a[0].Values[0].I != 1 || a[len(DefaultSymbols)].Values[0].I != 2 {
		t.Fatal("day numbering wrong")
	}
	c := Stocks{Seed: 4}.Rows(100)
	same := true
	for i := range c {
		if c[i].String() != a[i].String() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestFlowsSkewed(t *testing.T) {
	rows := Flows{Hosts: 32, Seed: 1}.Rows(20000)
	counts := map[string]int{}
	for _, r := range rows {
		counts[r.Values[0].S]++
	}
	// Zipf-ish: the hottest host should dominate the coldest by a lot.
	if counts["h000"] < 5*counts["h031"] {
		t.Fatalf("skew too weak: h000=%d h031=%d", counts["h000"], counts["h031"])
	}
	if len(counts) < 16 {
		t.Fatalf("host diversity: %d", len(counts))
	}
}

func TestSensorsSpikes(t *testing.T) {
	s := Sensors{Nodes: 8, SpikeProb: 0.1, Seed: 2}
	rows := s.Rows(2000)
	spikes := 0
	for _, r := range rows {
		if r.Values[1].F > 60 {
			spikes++
		}
	}
	if spikes == 0 {
		t.Fatal("no spikes at p=0.1")
	}
	if spikes > 600 {
		t.Fatalf("too many spikes: %d", spikes)
	}
	// Reading() shaping matches Rows().
	vals := s.Reading(3, 11)
	if len(vals) != 3 || vals[0].K != tuple.KindInt {
		t.Fatalf("reading: %v", vals)
	}
}

func TestDriftSchedule(t *testing.T) {
	if DriftSchedule(0, 100) != 0 || DriftSchedule(49, 100) != 0 ||
		DriftSchedule(50, 100) != 1 || DriftSchedule(99, 100) != 1 {
		t.Fatal("drift phases wrong")
	}
}

func TestUniformInts(t *testing.T) {
	a := UniformInts(100, 10, 5)
	b := UniformInts(100, 10, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
		if a[i] < 0 || a[i] >= 10 {
			t.Fatalf("out of range: %d", a[i])
		}
	}
}
