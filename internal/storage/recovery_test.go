package storage

import (
	"os"
	"path/filepath"
	"testing"

	"telegraphcq/internal/tuple"
)

// Restart: a fresh Archive over the same directory recovers the page
// directory from the segment files and serves the archived history.
func TestArchiveRecoveryAfterRestart(t *testing.T) {
	dir := t.TempDir()
	pool := NewPool(16, LRU)
	a, err := NewArchive("stocks", schema, pool, ArchiveConfig{Dir: dir, PagesPerSegment: 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for seq := int64(1); seq <= n; seq++ {
		if err := a.Append(row(seq, "A", float64(seq))); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil { // Close flushes the open page
		t.Fatal(err)
	}

	b, err := NewArchive("stocks", schema, NewPool(16, LRU), ArchiveConfig{Dir: dir, PagesPerSegment: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Count() != n {
		t.Fatalf("recovered count = %d, want %d", b.Count(), n)
	}
	got := 0
	var last int64
	if err := b.ScanRange(1, n, func(tp *tuple.Tuple) bool {
		got++
		if tp.TS.Seq <= last {
			t.Fatalf("order broken: %d after %d", tp.TS.Seq, last)
		}
		last = tp.TS.Seq
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("recovered scan = %d rows", got)
	}
	// The recovered archive accepts new appends that remain readable.
	if err := b.Append(row(n+1, "B", 1)); err != nil {
		t.Fatal(err)
	}
	found := false
	_ = b.ScanRange(n+1, n+1, func(tp *tuple.Tuple) bool {
		found = tp.Values[0].S == "B"
		return true
	})
	if !found {
		t.Fatal("post-recovery append unreadable")
	}
}

// A torn final page (partial write) is dropped at recovery; everything
// before it survives.
func TestArchiveRecoveryTornPage(t *testing.T) {
	dir := t.TempDir()
	a, err := NewArchive("s", schema, NewPool(8, LRU), ArchiveConfig{Dir: dir, PagesPerSegment: 64})
	if err != nil {
		t.Fatal(err)
	}
	for seq := int64(1); seq <= 2000; seq++ {
		_ = a.Append(row(seq, "A", 1))
	}
	_ = a.Close()
	pagesBefore := 0
	{
		chk, err := NewArchive("s", schema, NewPool(8, LRU), ArchiveConfig{Dir: dir, PagesPerSegment: 64})
		if err != nil {
			t.Fatal(err)
		}
		pagesBefore = chk.Pages()
		_ = chk.Close()
	}
	// Corrupt the last page: garbage in its record area.
	path := filepath.Join(dir, "s.000000.seg")
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(pagesBefore-1) * PageSize
	if _, err := f.WriteAt([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, off+pageHeaderSize); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b, err := NewArchive("s", schema, NewPool(8, LRU), ArchiveConfig{Dir: dir, PagesPerSegment: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Pages() != pagesBefore-1 {
		t.Fatalf("recovered pages = %d, want %d", b.Pages(), pagesBefore-1)
	}
	// Scanning still works over the surviving prefix.
	got := 0
	_ = b.ScanRange(1, 2000, func(*tuple.Tuple) bool { got++; return true })
	if got == 0 || got >= 2000 {
		t.Fatalf("surviving rows = %d", got)
	}
}

// A crash can leave a partially written page at the segment tail (the
// file length is not a page multiple). Recovery must drop only the torn
// tail, keep every synced page, and let appends overwrite the debris.
func TestArchiveRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	a, err := NewArchive("tt", schema, NewPool(8, LRU), ArchiveConfig{Dir: dir, PagesPerSegment: 64})
	if err != nil {
		t.Fatal(err)
	}
	for seq := int64(1); seq <= 2000; seq++ {
		_ = a.Append(row(seq, "A", 1))
	}
	if err := a.Flush(); err != nil { // fsyncs: these pages must survive
		t.Fatal(err)
	}
	pagesBefore := a.Pages()
	var lastSeq int64
	_ = a.ScanRange(1, 2000, func(tp *tuple.Tuple) bool { lastSeq = tp.TS.Seq; return true })
	_ = a.Close()
	if pagesBefore < 2 {
		t.Fatalf("need several pages, got %d", pagesBefore)
	}

	// Tear the tail: keep all full pages plus half of one more page's
	// worth of garbage-free truncation — the shape a crash mid-WriteAt
	// leaves behind.
	path := filepath.Join(dir, "tt.000000.seg")
	if err := os.Truncate(path, int64(pagesBefore)*PageSize-PageSize/2); err != nil {
		t.Fatal(err)
	}

	b, err := NewArchive("tt", schema, NewPool(8, LRU), ArchiveConfig{Dir: dir, PagesPerSegment: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Pages() != pagesBefore-1 {
		t.Fatalf("recovered pages = %d, want %d", b.Pages(), pagesBefore-1)
	}
	var got, recoveredLast int64
	_ = b.ScanRange(1, 2000, func(tp *tuple.Tuple) bool { got++; recoveredLast = tp.TS.Seq; return true })
	if got == 0 || recoveredLast >= lastSeq {
		t.Fatalf("torn-tail recovery kept %d rows through seq %d (pre-tear last %d)", got, recoveredLast, lastSeq)
	}
	// Appends resume on the torn page slot and stay readable.
	if err := b.Append(row(3000, "B", 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	n := 0
	_ = b.ScanRange(3000, 3000, func(*tuple.Tuple) bool { n++; return true })
	if n != 1 {
		t.Fatal("append after torn-tail recovery unreadable")
	}
}

// Recovery spans multiple segment files.
func TestArchiveRecoveryMultiSegment(t *testing.T) {
	dir := t.TempDir()
	a, err := NewArchive("m", schema, NewPool(8, LRU), ArchiveConfig{Dir: dir, PagesPerSegment: 2})
	if err != nil {
		t.Fatal(err)
	}
	for seq := int64(1); seq <= 3000; seq++ {
		_ = a.Append(row(seq, "A", 1))
	}
	_ = a.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "m.*.seg"))
	if len(segs) < 2 {
		t.Fatalf("segments = %d, want several", len(segs))
	}
	b, err := NewArchive("m", schema, NewPool(8, LRU), ArchiveConfig{Dir: dir, PagesPerSegment: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Count() != 3000 {
		t.Fatalf("recovered = %d", b.Count())
	}
}

// Fresh directories recover to empty without error.
func TestArchiveRecoveryFreshDir(t *testing.T) {
	a, err := NewArchive("fresh", schema, NewPool(4, LRU), ArchiveConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Count() != 0 || a.Pages() != 0 {
		t.Fatalf("fresh archive not empty: %d/%d", a.Count(), a.Pages())
	}
}

// Recovery after TruncateBefore: surviving (non-zero-based) segments are
// found and appends resume correctly.
func TestArchiveRecoveryAfterTruncate(t *testing.T) {
	dir := t.TempDir()
	a, err := NewArchive("tr", schema, NewPool(8, LRU), ArchiveConfig{Dir: dir, PagesPerSegment: 4})
	if err != nil {
		t.Fatal(err)
	}
	for seq := int64(1); seq <= 20000; seq++ {
		_ = a.Append(row(seq, "A", 1))
	}
	if err := a.TruncateBefore(15000); err != nil {
		t.Fatal(err)
	}
	survivors := int64(0)
	_ = a.ScanRange(1, 20000, func(*tuple.Tuple) bool { survivors++; return true })
	_ = a.Close()

	b, err := NewArchive("tr", schema, NewPool(8, LRU), ArchiveConfig{Dir: dir, PagesPerSegment: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	recovered := int64(0)
	_ = b.ScanRange(1, 20000, func(*tuple.Tuple) bool { recovered++; return true })
	if recovered != survivors {
		t.Fatalf("recovered %d rows, want %d", recovered, survivors)
	}
	// New appends after recovery land readably.
	if err := b.Append(row(20001, "B", 1)); err != nil {
		t.Fatal(err)
	}
	_ = b.Flush()
	n := 0
	_ = b.ScanRange(20001, 20001, func(*tuple.Tuple) bool { n++; return true })
	if n != 1 {
		t.Fatal("append after truncated recovery unreadable")
	}
}
