package storage

import (
	"fmt"
	"sync"
	"time"
)

// PageSize is the unit of buffering and disk I/O.
const PageSize = 8192

// PageID names a page: the owning archive's pool-wide id, its file
// number, and the page index within the file.
type PageID struct {
	Archive int32
	File    int32
	Page    int32
}

// Replacement selects the buffer pool's eviction policy. The paper
// (§4.3) notes the pool "must be tuned to both accept new bursty
// streaming data, as well as service queries that access historical
// data"; the two policies behave differently under window scans (see the
// storage benches).
type Replacement uint8

const (
	// LRU evicts the least recently used unpinned frame.
	LRU Replacement = iota
	// Clock sweeps a reference bit — cheaper, scan-resistant enough for
	// the sequential window workload.
	Clock
)

func (r Replacement) String() string {
	if r == Clock {
		return "clock"
	}
	return "lru"
}

// PoolStats counts buffer pool activity.
type PoolStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

type frame struct {
	id    PageID
	data  []byte
	pins  int
	ref   bool  // clock reference bit
	used  int64 // LRU timestamp (logical)
	valid bool
}

// Pool is a fixed-capacity page cache shared by stream archives.
type Pool struct {
	mu      sync.Mutex
	frames  []frame
	lookup  map[PageID]int
	policy  Replacement
	tick    int64
	hand    int
	stats   PoolStats
	fetchNs time.Duration // simulated disk latency per miss (0 = none)
}

// NewPool builds a pool of n frames with the given replacement policy.
func NewPool(n int, policy Replacement) *Pool {
	if n <= 0 {
		n = 64
	}
	p := &Pool{
		frames: make([]frame, n),
		lookup: make(map[PageID]int, n),
		policy: policy,
	}
	for i := range p.frames {
		p.frames[i].data = make([]byte, PageSize)
	}
	return p
}

// SetFetchLatency adds a simulated disk latency per miss, making
// hit-rate differences visible in wall-clock experiments.
func (p *Pool) SetFetchLatency(d time.Duration) { p.fetchNs = d }

// Stats returns a copy of the counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Get returns the page's bytes, loading it via load on a miss. The page
// is pinned; the caller must Unpin it. The returned slice is valid until
// Unpin.
func (p *Pool) Get(id PageID, load func(dst []byte) error) ([]byte, error) {
	p.mu.Lock()
	p.tick++
	if i, ok := p.lookup[id]; ok {
		f := &p.frames[i]
		f.pins++
		f.ref = true
		f.used = p.tick
		p.stats.Hits++
		p.mu.Unlock()
		return f.data, nil
	}
	p.stats.Misses++
	i, err := p.victim()
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	f := &p.frames[i]
	if f.valid {
		delete(p.lookup, f.id)
		p.stats.Evictions++
	}
	f.id = id
	f.valid = true
	f.pins = 1
	f.ref = true
	f.used = p.tick
	p.lookup[id] = i
	lat := p.fetchNs
	p.mu.Unlock()

	if lat > 0 {
		time.Sleep(lat)
	}
	if err := load(f.data); err != nil {
		p.mu.Lock()
		delete(p.lookup, id)
		f.valid = false
		f.pins = 0
		p.mu.Unlock()
		return nil, err
	}
	return f.data, nil
}

// victim picks an unpinned frame index (mu held).
func (p *Pool) victim() (int, error) {
	// Prefer invalid frames.
	for i := range p.frames {
		if !p.frames[i].valid && p.frames[i].pins == 0 {
			return i, nil
		}
	}
	switch p.policy {
	case Clock:
		for sweep := 0; sweep < 2*len(p.frames); sweep++ {
			f := &p.frames[p.hand]
			i := p.hand
			p.hand = (p.hand + 1) % len(p.frames)
			if f.pins > 0 {
				continue
			}
			if f.ref {
				f.ref = false
				continue
			}
			return i, nil
		}
	default: // LRU
		best, bestUsed := -1, int64(1)<<62
		for i := range p.frames {
			f := &p.frames[i]
			if f.pins > 0 {
				continue
			}
			if f.used < bestUsed {
				best, bestUsed = i, f.used
			}
		}
		if best >= 0 {
			return best, nil
		}
	}
	return -1, fmt.Errorf("storage: buffer pool exhausted (all %d frames pinned)", len(p.frames))
}

// Unpin releases a page returned by Get.
func (p *Pool) Unpin(id PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if i, ok := p.lookup[id]; ok && p.frames[i].pins > 0 {
		p.frames[i].pins--
	}
}

// Invalidate drops a page from the pool (its file was truncated).
func (p *Pool) Invalidate(id PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if i, ok := p.lookup[id]; ok && p.frames[i].pins == 0 {
		delete(p.lookup, id)
		p.frames[i].valid = false
	}
}
