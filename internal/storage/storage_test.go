package storage

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
)

var schema = tuple.NewSchema(
	tuple.Column{Source: "stocks", Name: "sym", Kind: tuple.KindString},
	tuple.Column{Source: "stocks", Name: "price", Kind: tuple.KindFloat},
	tuple.Column{Source: "stocks", Name: "flag", Kind: tuple.KindBool},
)

func row(seq int64, sym string, price float64) *tuple.Tuple {
	t := tuple.New(schema, tuple.String(sym), tuple.Float(price), tuple.Bool(seq%2 == 0))
	t.TS = tuple.Timestamp{Seq: seq}
	return t
}

func newArchive(t *testing.T, poolFrames int, policy Replacement) *Archive {
	t.Helper()
	pool := NewPool(poolFrames, policy)
	a, err := NewArchive("stocks", schema, pool, ArchiveConfig{Dir: t.TempDir(), PagesPerSegment: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	vals := []tuple.Value{
		tuple.Null(), tuple.Int(-42), tuple.Float(3.25),
		tuple.String("héllo\x00world"), tuple.Bool(true),
		tuple.Time(time.Unix(5, 7)),
	}
	s := tuple.NewSchema(make([]tuple.Column, len(vals))...)
	in := tuple.New(s, vals...)
	in.TS = tuple.Timestamp{Seq: 99, Wall: time.Unix(123, 456)}
	buf := encodeTuple(nil, in)
	out, rest, err := decodeTuple(buf, s)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v, %d left", err, len(rest))
	}
	if out.TS.Seq != 99 || !out.TS.Wall.Equal(in.TS.Wall) {
		t.Fatalf("timestamps: %+v", out.TS)
	}
	for i := range vals {
		if !tuple.Equal(out.Values[i], vals[i]) {
			t.Fatalf("value %d: %v != %v", i, out.Values[i], vals[i])
		}
		if out.Values[i].K != vals[i].K {
			t.Fatalf("kind %d: %v != %v", i, out.Values[i].K, vals[i].K)
		}
	}
}

func TestQuickEncodeDecode(t *testing.T) {
	s := tuple.NewSchema(
		tuple.Column{Name: "a", Kind: tuple.KindInt},
		tuple.Column{Name: "b", Kind: tuple.KindString},
		tuple.Column{Name: "c", Kind: tuple.KindFloat},
	)
	f := func(seq int64, a int64, b string, c float64) bool {
		if math.IsNaN(c) {
			c = 0
		}
		in := tuple.New(s, tuple.Int(a), tuple.String(b), tuple.Float(c))
		in.TS = tuple.Timestamp{Seq: seq}
		out, rest, err := decodeTuple(encodeTuple(nil, in), s)
		if err != nil || len(rest) != 0 {
			return false
		}
		return out.TS.Seq == seq && out.Values[0].I == a &&
			out.Values[1].S == b && out.Values[2].F == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendScanAll(t *testing.T) {
	a := newArchive(t, 16, LRU)
	const n = 5000
	for seq := int64(1); seq <= n; seq++ {
		if err := a.Append(row(seq, fmt.Sprintf("s%d", seq%7), float64(seq))); err != nil {
			t.Fatal(err)
		}
	}
	if a.Count() != n {
		t.Fatalf("Count = %d", a.Count())
	}
	var got []int64
	if err := a.ScanRange(1, n, func(tp *tuple.Tuple) bool {
		got = append(got, tp.TS.Seq)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("scanned %d", len(got))
	}
	for i, seq := range got {
		if seq != int64(i+1) {
			t.Fatalf("order broken at %d: %d", i, seq)
		}
	}
}

func TestScanRangeSelective(t *testing.T) {
	a := newArchive(t, 16, LRU)
	for seq := int64(1); seq <= 10000; seq++ {
		_ = a.Append(row(seq, "A", float64(seq)))
	}
	pool := a.pool
	before := pool.Stats()
	var got []int64
	if err := a.ScanRange(5000, 5004, func(tp *tuple.Tuple) bool {
		got = append(got, tp.TS.Seq)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0] != 5000 || got[4] != 5004 {
		t.Fatalf("range scan: %v", got)
	}
	after := pool.Stats()
	touched := (after.Hits + after.Misses) - (before.Hits + before.Misses)
	if touched > 3 {
		t.Fatalf("narrow scan touched %d pages", touched)
	}
}

func TestScanIncludesOpenPage(t *testing.T) {
	a := newArchive(t, 4, LRU)
	_ = a.Append(row(1, "A", 1)) // stays in the open page
	n := 0
	_ = a.ScanRange(1, 1, func(*tuple.Tuple) bool { n++; return true })
	if n != 1 {
		t.Fatalf("open page rows = %d", n)
	}
}

func TestScanEarlyStop(t *testing.T) {
	a := newArchive(t, 4, LRU)
	for seq := int64(1); seq <= 1000; seq++ {
		_ = a.Append(row(seq, "A", 1))
	}
	n := 0
	_ = a.ScanRange(1, 1000, func(*tuple.Tuple) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("early stop scanned %d", n)
	}
}

func TestFlushPersistsOpenPage(t *testing.T) {
	a := newArchive(t, 4, LRU)
	_ = a.Append(row(1, "A", 1))
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if a.Pages() != 1 {
		t.Fatalf("pages = %d", a.Pages())
	}
	n := 0
	_ = a.ScanRange(1, 1, func(*tuple.Tuple) bool { n++; return true })
	if n != 1 {
		t.Fatal("flushed row unreadable")
	}
}

func TestScanWindowBackward(t *testing.T) {
	a := newArchive(t, 16, LRU)
	for seq := int64(1); seq <= 100; seq++ {
		_ = a.Append(row(seq, "A", float64(seq)))
	}
	// Browse history backwards from seq 100: windows [91,100], [81,90], ...
	spec := window.Backward("stocks", 10, 10, 3)
	var rights []int64
	var counts []int
	err := a.ScanWindow(spec, "stocks", 100, func(inst window.Instance, rows []*tuple.Tuple) bool {
		rights = append(rights, inst.Ranges["stocks"].Right)
		counts = append(counts, len(rows))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rights) != 3 || rights[0] != 100 || rights[1] != 90 || rights[2] != 80 {
		t.Fatalf("backward rights: %v", rights)
	}
	for _, c := range counts {
		if c != 10 {
			t.Fatalf("window sizes: %v", counts)
		}
	}
}

func TestScanWindowEarlyStop(t *testing.T) {
	a := newArchive(t, 16, LRU)
	for seq := int64(1); seq <= 50; seq++ {
		_ = a.Append(row(seq, "A", 1))
	}
	n := 0
	err := a.ScanWindow(window.Sliding("stocks", 5, 5, 0), "stocks", 5,
		func(window.Instance, []*tuple.Tuple) bool {
			n++
			return n < 4
		})
	if err != nil || n != 4 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestTruncateBefore(t *testing.T) {
	a := newArchive(t, 16, LRU)
	for seq := int64(1); seq <= 20000; seq++ {
		_ = a.Append(row(seq, "A", 1))
	}
	_ = a.Flush()
	pagesBefore := a.Pages()
	if err := a.TruncateBefore(15000); err != nil {
		t.Fatal(err)
	}
	if a.Pages() >= pagesBefore {
		t.Fatalf("no pages reclaimed: %d -> %d", pagesBefore, a.Pages())
	}
	// Recent data still readable.
	n := 0
	_ = a.ScanRange(15000, 20000, func(*tuple.Tuple) bool { n++; return true })
	if n != 5001 {
		t.Fatalf("recent rows = %d", n)
	}
}

func TestPoolHitMissEviction(t *testing.T) {
	pool := NewPool(2, LRU)
	loads := 0
	load := func(dst []byte) error { loads++; return nil }
	get := func(f, p int32) {
		t.Helper()
		id := PageID{File: f, Page: p}
		if _, err := pool.Get(id, load); err != nil {
			t.Fatal(err)
		}
		pool.Unpin(id)
	}
	get(0, 0)
	get(0, 0) // hit
	get(0, 1)
	get(0, 2) // evicts page 0 (LRU)
	get(0, 0) // miss again
	s := pool.Stats()
	if s.Hits != 1 || s.Misses != 4 || s.Evictions < 1 {
		t.Fatalf("stats = %+v (loads %d)", s, loads)
	}
}

func TestPoolPinnedPagesNotEvicted(t *testing.T) {
	pool := NewPool(2, LRU)
	load := func(dst []byte) error { return nil }
	idA := PageID{File: 0, Page: 0}
	idB := PageID{File: 0, Page: 1}
	_, _ = pool.Get(idA, load) // pinned
	_, _ = pool.Get(idB, load) // pinned
	if _, err := pool.Get(PageID{File: 0, Page: 2}, load); err == nil {
		t.Fatal("eviction of pinned frame")
	}
	pool.Unpin(idA)
	if _, err := pool.Get(PageID{File: 0, Page: 2}, load); err != nil {
		t.Fatal(err)
	}
}

func TestPoolClockPolicy(t *testing.T) {
	pool := NewPool(3, Clock)
	load := func(dst []byte) error { return nil }
	for i := int32(0); i < 10; i++ {
		id := PageID{File: 0, Page: i % 5}
		if _, err := pool.Get(id, load); err != nil {
			t.Fatal(err)
		}
		pool.Unpin(id)
	}
	s := pool.Stats()
	if s.Misses == 0 || s.Hits+s.Misses != 10 {
		t.Fatalf("clock stats = %+v", s)
	}
}

func TestPoolLoadErrorNotCached(t *testing.T) {
	pool := NewPool(2, LRU)
	id := PageID{File: 0, Page: 0}
	fail := fmt.Errorf("disk error")
	if _, err := pool.Get(id, func([]byte) error { return fail }); err == nil {
		t.Fatal("load error swallowed")
	}
	ok := false
	if _, err := pool.Get(id, func([]byte) error { ok = true; return nil }); err != nil || !ok {
		t.Fatal("failed page cached")
	}
	pool.Unpin(id)
}

func TestArchiveRequiresDir(t *testing.T) {
	if _, err := NewArchive("x", schema, NewPool(2, LRU), ArchiveConfig{}); err == nil {
		t.Fatal("no-dir archive accepted")
	}
}

func TestSharedPoolAcrossArchives(t *testing.T) {
	pool := NewPool(8, LRU)
	dir := t.TempDir()
	a1, err := NewArchive("s1", schema, pool, ArchiveConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewArchive("s2", schema, pool, ArchiveConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	defer a2.Close()
	for seq := int64(1); seq <= 2000; seq++ {
		_ = a1.Append(row(seq, "A", 1))
		_ = a2.Append(row(seq, "B", 2))
	}
	n1, n2 := 0, 0
	_ = a1.ScanRange(1, 2000, func(tp *tuple.Tuple) bool {
		if tp.Values[0].S != "A" {
			t.Fatal("cross-archive contamination")
		}
		n1++
		return true
	})
	_ = a2.ScanRange(1, 2000, func(tp *tuple.Tuple) bool {
		if tp.Values[0].S != "B" {
			t.Fatal("cross-archive contamination")
		}
		n2++
		return true
	})
	if n1 != 2000 || n2 != 2000 {
		t.Fatalf("rows: %d, %d", n1, n2)
	}
}

func TestPoolPoliciesUnderSequentialScan(t *testing.T) {
	// With a pool smaller than the scanned range, repeated sequential
	// scans defeat LRU (every access is a miss); the test pins the shape
	// rather than exact numbers.
	run := func(policy Replacement) PoolStats {
		pool := NewPool(8, policy)
		a, err := NewArchive("s", schema, pool, ArchiveConfig{Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		for seq := int64(1); seq <= 20000; seq++ {
			_ = a.Append(row(seq, "A", 1))
		}
		_ = a.Flush()
		for rep := 0; rep < 3; rep++ {
			_ = a.ScanRange(1, 20000, func(*tuple.Tuple) bool { return true })
		}
		return pool.Stats()
	}
	lru := run(LRU)
	clock := run(Clock)
	if lru.Misses == 0 || clock.Misses == 0 {
		t.Fatalf("no misses? lru=%+v clock=%+v", lru, clock)
	}
	t.Logf("lru=%+v clock=%+v", lru, clock)
}

func BenchmarkAppend(b *testing.B) {
	pool := NewPool(64, Clock)
	a, err := NewArchive("bench", schema, pool, ArchiveConfig{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Append(row(int64(i+1), "MSFT", 50)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWindowScan(b *testing.B) {
	pool := NewPool(64, Clock)
	a, err := NewArchive("bench", schema, pool, ArchiveConfig{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	r := rand.New(rand.NewSource(1))
	for seq := int64(1); seq <= 100000; seq++ {
		_ = a.Append(row(seq, "MSFT", r.Float64()))
	}
	_ = a.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := int64(i%90000 + 1)
		n := 0
		_ = a.ScanRange(lo, lo+999, func(*tuple.Tuple) bool { n++; return true })
		if n != 1000 {
			b.Fatalf("scan = %d", n)
		}
	}
}
