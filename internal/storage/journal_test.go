package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openReplay(t *testing.T, path string) (*Journal, [][]byte) {
	t.Helper()
	var recs [][]byte
	j, err := OpenJournal(path, func(rec []byte) error {
		cp := make([]byte, len(rec))
		copy(cp, rec)
		recs = append(recs, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	return j, recs
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster", "coord.journal")
	j, recs := openReplay(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := [][]byte{[]byte("epoch:1"), []byte("node:0:w0"), []byte("assign:3:0:1")}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, got := openReplay(t, path)
	defer j2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	// Appends resume cleanly after reopen.
	if err := j2.Append([]byte("floors:v2")); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if err := j2.Sync(); err != nil {
		t.Fatalf("Sync after reopen: %v", err)
	}
	_, got = openReplay(t, path)
	if len(got) != 4 || string(got[3]) != "floors:v2" {
		t.Fatalf("after resume got %d records, last %q", len(got), got[len(got)-1])
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coord.journal")
	j, _ := openReplay(t, path)
	for i := 0; i < 5; i++ {
		if err := j.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	goodSize := j.Size()
	// Simulate a crash mid-append: a header promising more bytes than
	// were ever written.
	if err := j.Append([]byte("this record will be torn")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := os.Truncate(path, goodSize+journalHeaderSize+3); err != nil {
		t.Fatalf("Truncate: %v", err)
	}

	j2, recs := openReplay(t, path)
	if len(recs) != 5 {
		t.Fatalf("replayed %d records after torn tail, want 5", len(recs))
	}
	if j2.Size() != goodSize {
		t.Fatalf("recovered size %d, want %d (torn tail not truncated)", j2.Size(), goodSize)
	}
	if info, err := os.Stat(path); err != nil || info.Size() != goodSize {
		t.Fatalf("file size %d, want %d", info.Size(), goodSize)
	}
	// Appends land on the clean boundary and survive another reopen.
	if err := j2.Append([]byte("after-recovery")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, recs = openReplay(t, path)
	if len(recs) != 6 || string(recs[5]) != "after-recovery" {
		t.Fatalf("after recovery+append got %d records", len(recs))
	}
}

func TestJournalCorruptRecordStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coord.journal")
	j, _ := openReplay(t, path)
	offsets := []int64{}
	for i := 0; i < 4; i++ {
		offsets = append(offsets, j.Size())
		if err := j.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Flip a payload byte of record 2: CRC fails, replay stops there.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, offsets[2]+journalHeaderSize); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	f.Close()

	j2, recs := openReplay(t, path)
	defer j2.Close()
	if len(recs) != 2 {
		t.Fatalf("replayed %d records past corruption, want 2", len(recs))
	}
	if j2.Size() != offsets[2] {
		t.Fatalf("recovered size %d, want %d", j2.Size(), offsets[2])
	}
}

func TestJournalRewriteCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coord.journal")
	j, _ := openReplay(t, path)
	for i := 0; i < 100; i++ {
		if err := j.Append([]byte(fmt.Sprintf("superseded-%04d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	before := j.Size()
	snapshot := [][]byte{[]byte("epoch:7"), []byte("snapshot:final")}
	if err := j.Rewrite(snapshot); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if j.Size() >= before {
		t.Fatalf("Rewrite did not shrink: %d >= %d", j.Size(), before)
	}
	// Journal stays appendable on the new file handle.
	if err := j.Append([]byte("post-compact")); err != nil {
		t.Fatalf("Append after Rewrite: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, recs := openReplay(t, path)
	want := []string{"epoch:7", "snapshot:final", "post-compact"}
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, w := range want {
		if string(recs[i]) != w {
			t.Fatalf("record %d = %q, want %q", i, recs[i], w)
		}
	}
	if _, err := os.Stat(path + ".rewrite"); !os.IsNotExist(err) {
		t.Fatalf("temp rewrite file left behind: %v", err)
	}
}

func TestJournalRejectsBadRecordSizes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coord.journal")
	j, _ := openReplay(t, path)
	defer j.Close()
	if err := j.Append(nil); err == nil {
		t.Fatal("Append(nil) succeeded")
	}
	if err := j.Append(make([]byte, maxJournalRecord+1)); err == nil {
		t.Fatal("oversized Append succeeded")
	}
}
