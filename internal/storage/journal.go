// Journal is the generic append-only record log under the coordinator's
// durable state (and any future subsystem that needs one): fixed-framed
// records (u32 LE payload length, u32 LE CRC32, payload) appended to a
// single file, made durable with explicit fsync, and recovered with the
// same torn-tail-truncate discipline the Archive uses for segment files
// — replay reads the longest valid record prefix, and anything after
// the first short, oversized, or checksum-failing record is assumed to
// be a crash-torn tail and truncated away so appends resume on a clean
// boundary.
package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// journalHeaderSize frames each record: payload length + CRC32 (IEEE).
const journalHeaderSize = 8

// maxJournalRecord bounds one record (a full shard-map snapshot fits
// comfortably; anything larger is corruption, not data).
const maxJournalRecord = 16 << 20

// Journal is an fsync'd record log. Append/Sync/Rewrite serialize on an
// internal file handle; callers provide their own higher-level locking
// if records must be ordered against other state.
type Journal struct {
	path string
	f    *os.File
	size int64 // valid bytes (append offset)
}

// OpenJournal opens (creating if absent) the journal at path, replays
// every valid record into replay in order, truncates any torn tail, and
// returns the journal positioned to append. A nil replay just recovers
// the append position.
func OpenJournal(path string, replay func(rec []byte) error) (*Journal, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{path: path, f: f}
	if err := j.recover(replay); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// recover scans records from the start, stopping at the first torn or
// corrupt one, and truncates the file there.
func (j *Journal) recover(replay func(rec []byte) error) error {
	var hdr [journalHeaderSize]byte
	off := int64(0)
	for {
		if _, err := j.f.ReadAt(hdr[:], off); err != nil {
			break // EOF or short header: tail ends here
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxJournalRecord {
			break // torn or garbage length
		}
		rec := make([]byte, n)
		if _, err := j.f.ReadAt(rec, off+journalHeaderSize); err != nil {
			break // record body torn mid-write
		}
		if crc32.ChecksumIEEE(rec) != sum {
			break // bit rot or a torn overwrite
		}
		if replay != nil {
			if err := replay(rec); err != nil {
				return fmt.Errorf("storage: journal %s replay at %d: %w", j.path, off, err)
			}
		}
		off += journalHeaderSize + int64(n)
	}
	j.size = off
	// Drop the torn tail so the next append starts on a clean frame.
	if info, err := j.f.Stat(); err == nil && info.Size() > off {
		if err := j.f.Truncate(off); err != nil {
			return err
		}
	}
	return nil
}

// Append writes one record at the append offset. It does not fsync;
// call Sync when the record must survive a crash (batching appends
// between syncs is the intended use).
func (j *Journal) Append(rec []byte) error {
	if len(rec) == 0 || len(rec) > maxJournalRecord {
		return fmt.Errorf("storage: journal record of %d bytes", len(rec))
	}
	buf := make([]byte, journalHeaderSize+len(rec))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(rec)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(rec))
	copy(buf[journalHeaderSize:], rec)
	if _, err := j.f.WriteAt(buf, j.size); err != nil {
		return err
	}
	j.size += int64(len(buf))
	return nil
}

// Sync fsyncs everything appended so far.
func (j *Journal) Sync() error { return j.f.Sync() }

// Size returns the valid (recovered + appended) byte length.
func (j *Journal) Size() int64 { return j.size }

// Rewrite atomically replaces the journal's contents with recs — the
// compaction path: a caller snapshots its live state as a fresh record
// sequence, and the history of superseded records is dropped. The new
// contents are written to a temp file, fsynced, and renamed over the
// journal, so a crash at any point leaves either the old or the new
// journal intact, never a mix.
func (j *Journal) Rewrite(recs [][]byte) error {
	tmp := j.path + ".rewrite"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	size := int64(0)
	for _, rec := range recs {
		var hdr [journalHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(rec)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(rec))
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if _, err := f.Write(rec); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		size += journalHeaderSize + int64(len(rec))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	old := j.f
	j.f = f
	j.size = size
	old.Close()
	// Make the rename durable: fsync the directory entry.
	if d, err := os.Open(filepath.Dir(j.path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Close fsyncs and closes the journal file.
func (j *Journal) Close() error {
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
