// Package storage provides the out-of-core substrate of TelegraphCQ
// (§4.2.3, §4.3): streamed data is spooled to disk in an append-only,
// log-structured archive (exploiting the sequential write workload),
// and read back through a buffer pool by a scanner driven by window
// descriptors — the broadcast-disk-style read path the paper calls for.
package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"telegraphcq/internal/tuple"
)

// encodeTuple appends the wire form of t (for the given schema) to dst.
// Layout: seq (varint), wall (varint ns, 0 = none), then one value per
// column: kind byte + payload.
func encodeTuple(dst []byte, t *tuple.Tuple) []byte {
	dst = binary.AppendVarint(dst, t.TS.Seq)
	var wall int64
	if !t.TS.Wall.IsZero() {
		wall = t.TS.Wall.UnixNano()
	}
	dst = binary.AppendVarint(dst, wall)
	dst = binary.AppendUvarint(dst, uint64(len(t.Values)))
	for _, v := range t.Values {
		dst = append(dst, byte(v.K))
		switch v.K {
		case tuple.KindNull:
		case tuple.KindInt, tuple.KindTime:
			dst = binary.AppendVarint(dst, v.I)
		case tuple.KindFloat:
			dst = binary.AppendUvarint(dst, math.Float64bits(v.F))
		case tuple.KindString:
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		case tuple.KindBool:
			if v.B {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
	}
	return dst
}

// decodeTuple reads one tuple from buf, returning it and the remaining
// bytes.
func decodeTuple(buf []byte, schema *tuple.Schema) (*tuple.Tuple, []byte, error) {
	seq, n := binary.Varint(buf)
	if n <= 0 {
		return nil, nil, fmt.Errorf("storage: truncated seq")
	}
	buf = buf[n:]
	wall, n := binary.Varint(buf)
	if n <= 0 {
		return nil, nil, fmt.Errorf("storage: truncated wall")
	}
	buf = buf[n:]
	arity, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, nil, fmt.Errorf("storage: truncated arity")
	}
	buf = buf[n:]
	vals := make([]tuple.Value, arity)
	for i := range vals {
		if len(buf) == 0 {
			return nil, nil, fmt.Errorf("storage: truncated value %d", i)
		}
		k := tuple.Kind(buf[0])
		buf = buf[1:]
		switch k {
		case tuple.KindNull:
			vals[i] = tuple.Null()
		case tuple.KindInt, tuple.KindTime:
			x, n := binary.Varint(buf)
			if n <= 0 {
				return nil, nil, fmt.Errorf("storage: truncated int")
			}
			buf = buf[n:]
			vals[i] = tuple.Value{K: k, I: x}
		case tuple.KindFloat:
			u, n := binary.Uvarint(buf)
			if n <= 0 {
				return nil, nil, fmt.Errorf("storage: truncated float")
			}
			buf = buf[n:]
			vals[i] = tuple.Float(math.Float64frombits(u))
		case tuple.KindString:
			l, n := binary.Uvarint(buf)
			if n <= 0 || uint64(len(buf)-n) < l {
				return nil, nil, fmt.Errorf("storage: truncated string")
			}
			buf = buf[n:]
			vals[i] = tuple.String(string(buf[:l]))
			buf = buf[l:]
		case tuple.KindBool:
			if len(buf) == 0 {
				return nil, nil, fmt.Errorf("storage: truncated bool")
			}
			vals[i] = tuple.Bool(buf[0] == 1)
			buf = buf[1:]
		default:
			return nil, nil, fmt.Errorf("storage: bad kind %d", k)
		}
	}
	t := tuple.New(schema, vals...)
	t.TS.Seq = seq
	if wall != 0 {
		t.TS.Wall = timeFromNano(wall)
	}
	return t, buf, nil
}
