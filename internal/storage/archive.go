package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
)

func timeFromNano(ns int64) (t time.Time) { return time.Unix(0, ns) }

// pageMeta is the in-memory directory entry for one on-disk page.
type pageMeta struct {
	id     PageID
	count  int
	minSeq int64
	maxSeq int64
	length int // bytes used in the page
}

// pageHeaderSize prefixes each on-disk page: record count (uint16) and
// used bytes (uint16). The header makes the page directory recoverable
// from the segment files alone, so an archive survives restarts.
const pageHeaderSize = 4

// Archive is the log-structured, append-only store for one stream:
// tuples are encoded into pages, pages appended sequentially to segment
// files, and an in-memory page directory (min/max sequence per page)
// lets window scans touch only relevant pages. Opening an archive over
// an existing directory recovers the directory by scanning the segments.
var nextArchiveID atomic.Int32

type Archive struct {
	mu       sync.Mutex
	aid      int32
	name     string
	dir      string
	schema   *tuple.Schema
	pool     *Pool
	fileID   int32
	nextPage int32 // next page index within the current segment file
	segSize  int32 // pages per segment file

	cur      []byte // open page being filled
	curMeta  pageMeta
	pages    []pageMeta
	files    map[int32]*os.File
	appended int64
}

// ArchiveConfig sizes an archive.
type ArchiveConfig struct {
	// Dir is the directory for segment files (required).
	Dir string
	// PagesPerSegment bounds segment file size (default 128 → 1 MiB).
	PagesPerSegment int
}

// NewArchive opens an empty archive for a stream. The pool may be shared
// by several archives.
func NewArchive(name string, schema *tuple.Schema, pool *Pool, cfg ArchiveConfig) (*Archive, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("storage: archive %s: no directory", name)
	}
	if cfg.PagesPerSegment <= 0 {
		cfg.PagesPerSegment = 128
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	a := &Archive{
		aid:     nextArchiveID.Add(1),
		name:    name,
		dir:     cfg.Dir,
		schema:  schema,
		pool:    pool,
		segSize: int32(cfg.PagesPerSegment),
		files:   map[int32]*os.File{},
	}
	if err := a.recover(); err != nil {
		return nil, err
	}
	a.resetPage()
	return a, nil
}

// recover rebuilds the page directory from existing segment files (a
// restart, or attaching to an archive another process wrote). Pages are
// self-describing via their headers; tuple records are decoded once to
// re-derive the min/max sequence bounds.
func (a *Archive) recover() error {
	// Segment files may start past 0: TruncateBefore reclaims old
	// segments, so recovery lists the directory instead of probing
	// sequential ids.
	matches, err := filepath.Glob(filepath.Join(a.dir, a.name+".*.seg"))
	if err != nil || len(matches) == 0 {
		return nil // fresh archive
	}
	var fileIDs []int32
	for _, m := range matches {
		var id int32
		if _, err := fmt.Sscanf(filepath.Base(m), a.name+".%06d.seg", &id); err == nil {
			fileIDs = append(fileIDs, id)
		}
	}
	sort.Slice(fileIDs, func(i, j int) bool { return fileIDs[i] < fileIDs[j] })

	lastFile, lastPage := int32(0), int32(-1)
	buf := make([]byte, PageSize)
	for _, fileID := range fileIDs {
		path := filepath.Join(a.dir, fmt.Sprintf("%s.%06d.seg", a.name, fileID))
		info, err := os.Stat(path)
		if err != nil {
			continue
		}
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		a.files[fileID] = f
		pages := int32(info.Size() / PageSize)
		for pg := int32(0); pg < pages && pg < a.segSize; pg++ {
			if _, err := f.ReadAt(buf, int64(pg)*PageSize); err != nil {
				return err
			}
			count := int(uint16(buf[0]) | uint16(buf[1])<<8)
			length := int(uint16(buf[2]) | uint16(buf[3])<<8)
			if count == 0 || pageHeaderSize+length > PageSize {
				break // torn or empty tail page: recovery stops here
			}
			m := pageMeta{
				id:     PageID{Archive: a.aid, File: fileID, Page: pg},
				count:  count,
				length: length,
				minSeq: int64(1) << 62,
				maxSeq: -1 << 62,
			}
			rest := buf[pageHeaderSize : pageHeaderSize+length]
			ok := true
			for i := 0; i < count; i++ {
				t, r, err := decodeTuple(rest, a.schema)
				if err != nil {
					ok = false // torn page: drop it, stop recovery
					break
				}
				rest = r
				if t.TS.Seq < m.minSeq {
					m.minSeq = t.TS.Seq
				}
				if t.TS.Seq > m.maxSeq {
					m.maxSeq = t.TS.Seq
				}
			}
			if !ok {
				break
			}
			a.pages = append(a.pages, m)
			a.appended += int64(count)
			lastFile, lastPage = fileID, pg
		}
	}
	// Resume appending after the last recovered page.
	if lastPage >= 0 {
		if lastPage+1 >= a.segSize {
			a.fileID = lastFile + 1
			a.nextPage = 0
		} else {
			a.fileID = lastFile
			a.nextPage = lastPage + 1
		}
	}
	return nil
}

func (a *Archive) resetPage() {
	a.cur = a.cur[:0]
	a.curMeta = pageMeta{
		id:     PageID{Archive: a.aid, File: a.fileID, Page: a.nextPage},
		minSeq: int64(1) << 62,
		maxSeq: -1 << 62,
	}
}

// Append spools one tuple. Tuples must arrive in nondecreasing sequence
// order (streamers assign sequence numbers at ingress).
func (a *Archive) Append(t *tuple.Tuple) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	rec := encodeTuple(nil, t)
	if len(rec) > PageSize-pageHeaderSize {
		return fmt.Errorf("storage: tuple of %d bytes exceeds page size", len(rec))
	}
	if pageHeaderSize+len(a.cur)+len(rec) > PageSize {
		if err := a.flushPageLocked(); err != nil {
			return err
		}
	}
	a.cur = append(a.cur, rec...)
	a.curMeta.count++
	a.curMeta.length = len(a.cur)
	if t.TS.Seq < a.curMeta.minSeq {
		a.curMeta.minSeq = t.TS.Seq
	}
	if t.TS.Seq > a.curMeta.maxSeq {
		a.curMeta.maxSeq = t.TS.Seq
	}
	a.appended++
	return nil
}

// flushPageLocked writes the open page to the current segment file.
func (a *Archive) flushPageLocked() error {
	if a.curMeta.count == 0 {
		return nil
	}
	f, err := a.segmentFile(a.fileID)
	if err != nil {
		return err
	}
	pageInFile := a.curMeta.id.Page
	buf := make([]byte, PageSize)
	buf[0] = byte(a.curMeta.count)
	buf[1] = byte(a.curMeta.count >> 8)
	buf[2] = byte(a.curMeta.length)
	buf[3] = byte(a.curMeta.length >> 8)
	copy(buf[pageHeaderSize:], a.cur)
	if _, err := f.WriteAt(buf, int64(pageInFile)*PageSize); err != nil {
		return err
	}
	a.pages = append(a.pages, a.curMeta)
	// Advance the write cursor, rolling to a new segment when full. A
	// filled segment is fsynced before the cursor leaves it: after
	// rotation the file is never written again, so a crash can only
	// tear the segment currently being appended.
	a.nextPage++
	if a.nextPage >= a.segSize {
		if err := f.Sync(); err != nil {
			return err
		}
		a.fileID++
		a.nextPage = 0
	}
	a.resetPage()
	return nil
}

// Flush forces the open page to disk and fsyncs it (end of burst /
// shutdown): every tuple appended before Flush survives a crash.
func (a *Archive) Flush() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.flushPageLocked(); err != nil {
		return err
	}
	return a.syncLocked()
}

// Sync fsyncs the flushed pages without forcing out the partial open
// page, so callers can bound data loss periodically while Append keeps
// packing pages tightly.
func (a *Archive) Sync() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.syncLocked()
}

// syncLocked fsyncs the segment under the write cursor. Earlier
// segments were made durable when they filled; truncated ones are gone.
func (a *Archive) syncLocked() error {
	if f, ok := a.files[a.fileID]; ok {
		return f.Sync()
	}
	return nil
}

func (a *Archive) segmentFile(id int32) (*os.File, error) {
	if f, ok := a.files[id]; ok {
		return f, nil
	}
	path := filepath.Join(a.dir, fmt.Sprintf("%s.%06d.seg", a.name, id))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	a.files[id] = f
	return f, nil
}

// Count returns the number of appended tuples (including the open page).
func (a *Archive) Count() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.appended
}

// Pages returns the number of flushed pages.
func (a *Archive) Pages() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pages)
}

// ScanRange calls fn for every stored tuple with sequence in [lo, hi],
// in order, including the open page. Only pages overlapping the range
// are fetched (window-descriptor-driven scanning, §4.2.3). fn returning
// false stops the scan.
func (a *Archive) ScanRange(lo, hi int64, fn func(*tuple.Tuple) bool) error {
	a.mu.Lock()
	metas := make([]pageMeta, len(a.pages))
	copy(metas, a.pages)
	open := append([]byte(nil), a.cur...)
	openMeta := a.curMeta
	a.mu.Unlock()

	for _, m := range metas {
		if m.maxSeq < lo || m.minSeq > hi {
			continue
		}
		stop, err := a.scanPage(m, lo, hi, fn)
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	if openMeta.count > 0 && openMeta.maxSeq >= lo && openMeta.minSeq <= hi {
		if _, err := scanBuf(open, openMeta.count, a.schema, lo, hi, fn); err != nil {
			return err
		}
	}
	return nil
}

func (a *Archive) scanPage(m pageMeta, lo, hi int64, fn func(*tuple.Tuple) bool) (bool, error) {
	data, err := a.pool.Get(m.id, func(dst []byte) error {
		a.mu.Lock()
		f, err := a.segmentFile(m.id.File)
		a.mu.Unlock()
		if err != nil {
			return err
		}
		_, err = f.ReadAt(dst, int64(m.id.Page)*PageSize)
		return err
	})
	if err != nil {
		return false, err
	}
	defer a.pool.Unpin(m.id)
	return scanBuf(data[pageHeaderSize:pageHeaderSize+m.length], m.count, a.schema, lo, hi, fn)
}

// scanBuf decodes count tuples from buf, filtering to [lo, hi]. Returns
// stop=true when fn halted the scan.
func scanBuf(buf []byte, count int, schema *tuple.Schema, lo, hi int64, fn func(*tuple.Tuple) bool) (bool, error) {
	for i := 0; i < count; i++ {
		t, rest, err := decodeTuple(buf, schema)
		if err != nil {
			return false, err
		}
		buf = rest
		if t.TS.Seq < lo || t.TS.Seq > hi {
			continue
		}
		if !fn(t) {
			return true, nil
		}
	}
	return false, nil
}

// ScanWindow runs fn over each window instance of spec (bound to st) in
// sequence, fetching each instance's tuples from the archive. This is
// the "scanner operator ... driven by window descriptors" and serves
// backward-moving windows that WindowAgg cannot (historical browsing,
// §4.1.1).
func (a *Archive) ScanWindow(spec *window.Spec, stream string, st int64,
	fn func(inst window.Instance, tuples []*tuple.Tuple) bool) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	seq := window.NewSequence(spec, st)
	for {
		inst, ok := seq.Next()
		if !ok {
			return nil
		}
		rng, ok := inst.Ranges[stream]
		if !ok {
			return fmt.Errorf("storage: window has no WindowIs for %s", stream)
		}
		var rows []*tuple.Tuple
		if err := a.ScanRange(rng.Left, rng.Right, func(t *tuple.Tuple) bool {
			rows = append(rows, t)
			return true
		}); err != nil {
			return err
		}
		if !fn(inst, rows) {
			return nil
		}
	}
}

// TruncateBefore drops whole segment files every page of which is older
// than seq — the log-structured reclaim path. Pages inside partially old
// segments are kept (reclaim is per-file, as in log-structured stores).
func (a *Archive) TruncateBefore(seq int64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	byFile := map[int32][]pageMeta{}
	for _, m := range a.pages {
		byFile[m.id.File] = append(byFile[m.id.File], m)
	}
	kept := a.pages[:0]
	for _, m := range a.pages {
		pages := byFile[m.id.File]
		allOld := true
		for _, pm := range pages {
			if pm.maxSeq >= seq {
				allOld = false
				break
			}
		}
		if allOld && m.id.File != a.fileID {
			continue // drop this page's directory entry
		}
		kept = append(kept, m)
	}
	dropped := len(a.pages) - len(kept)
	a.pages = kept
	if dropped > 0 {
		for id, pages := range byFile {
			if id == a.fileID {
				continue
			}
			allOld := true
			for _, pm := range pages {
				if pm.maxSeq >= seq {
					allOld = false
					break
				}
			}
			if allOld {
				for _, pm := range pages {
					a.pool.Invalidate(pm.id)
				}
				if f, ok := a.files[id]; ok {
					name := f.Name()
					f.Close()
					os.Remove(name)
					delete(a.files, id)
				} else {
					os.Remove(filepath.Join(a.dir, fmt.Sprintf("%s.%06d.seg", a.name, id)))
				}
			}
		}
	}
	return nil
}

// Close flushes, fsyncs, and closes segment files.
func (a *Archive) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.flushPageLocked(); err != nil {
		return err
	}
	if err := a.syncLocked(); err != nil {
		return err
	}
	for _, f := range a.files {
		f.Close()
	}
	a.files = map[int32]*os.File{}
	return nil
}
