package telemetry

import (
	"net/http"
)

// Handler returns an http.Handler exposing the registry:
//
//	GET /metrics  Prometheus text exposition format
//	GET /statz    the same samples as indented JSON
//	GET /healthz  "ok" (liveness)
//
// Mount it on a mux or serve it directly; every path other than the
// three above returns 404.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/statz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	return mux
}
