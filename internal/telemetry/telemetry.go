// Package telemetry is the engine's observability layer: a low-overhead
// metrics registry the rest of the system (eddies, SteMs, fjord queues,
// the executor, the buffer pool) reports into, plus textual exposition
// in Prometheus text format and JSON.
//
// TelegraphCQ's core thesis is an engine that continuously observes
// itself — eddies reroute tuples based on observed operator costs and
// selectivities (§2.1–2.2), and "Adapting Adaptivity" (§4.3) tunes
// routing overhead from measured behavior. This package makes those
// observations first-class: hot paths increment plain atomic counters
// (no locks, no maps); the registry resolves names, labels, and derived
// gauges only at scrape time.
//
// Two disciplines keep the overhead within the §4.3 budget:
//
//   - Counters handed to hot paths are *Counter pointers resolved once
//     at construction; an increment is a single atomic add.
//   - Everything else (queue depths, SteM sizes, hit rates,
//     selectivities) is pulled via Collectors — closures sampled only
//     when someone scrapes /metrics, runs SHOW STATS, or the system
//     stream sampler fires.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; increments are single atomic adds, safe from any goroutine.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must not be negative for Prometheus semantics; this is
// not checked on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Kind distinguishes counters (monotone) from gauges (instantaneous).
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
)

func (k Kind) String() string {
	if k == KindGauge {
		return "gauge"
	}
	return "counter"
}

// Label is one key=value dimension of a sample.
type Label struct{ Key, Value string }

// L is shorthand for building a Label.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// Sample is one observed metric value at scrape time.
type Sample struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []Label
	Value  float64
}

// key renders the sample's identity (name + sorted labels) for sorting
// and deduplication.
func (s *Sample) key() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, l := range s.Labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Emit receives samples from a Collector.
type Emit func(Sample)

// Collector produces samples on demand. Collectors must be safe for
// concurrent use: they run on the scraper's goroutine while the engine
// is processing tuples.
type Collector func(Emit)

// Registry holds directly registered counters, gauge functions, and
// collectors. A Registry is safe for concurrent use; registration takes
// a lock, but incrementing a registered Counter does not.
type Registry struct {
	mu         sync.RWMutex
	counters   []registeredCounter
	gauges     []registeredGauge
	collectors []Collector
}

type registeredCounter struct {
	name   string
	help   string
	labels []Label
	c      *Counter
}

type registeredGauge struct {
	name   string
	help   string
	labels []Label
	fn     func() float64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers (or re-registers) a counter and returns the handle
// hot paths increment. Registering the same name+labels twice returns
// the existing counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	sortLabels(labels)
	want := (&Sample{Name: name, Labels: labels}).key()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rc := range r.counters {
		if (&Sample{Name: rc.name, Labels: rc.labels}).key() == want {
			return rc.c
		}
	}
	c := &Counter{}
	r.counters = append(r.counters, registeredCounter{name: name, help: help, labels: labels, c: c})
	return c
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	sortLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges = append(r.gauges, registeredGauge{name: name, help: help, labels: labels, fn: fn})
}

// Register adds a collector sampled on every Gather.
func (r *Registry) Register(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// Gather samples every registered metric and collector and returns the
// samples sorted by name then labels.
func (r *Registry) Gather() []Sample {
	r.mu.RLock()
	counters := append([]registeredCounter(nil), r.counters...)
	gauges := append([]registeredGauge(nil), r.gauges...)
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.RUnlock()

	var out []Sample
	for _, rc := range counters {
		out = append(out, Sample{Name: rc.name, Help: rc.help, Kind: KindCounter,
			Labels: rc.labels, Value: float64(rc.c.Load())})
	}
	for _, rg := range gauges {
		out = append(out, Sample{Name: rg.name, Help: rg.help, Kind: KindGauge,
			Labels: rg.labels, Value: rg.fn()})
	}
	emit := func(s Sample) {
		sortLabels(s.Labels)
		out = append(out, s)
	}
	for _, c := range collectors {
		c(emit)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].key() < out[j].key()
	})
	return out
}

func sortLabels(ls []Label) {
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
}

// ------------------------------------------------------------ exposition

// WritePrometheus renders all samples in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Gather()
	lastMeta := ""
	for i := range samples {
		s := &samples[i]
		if s.Name != lastMeta {
			lastMeta = s.Name
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, escapeHelp(s.Help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, PrometheusLine(s)); err != nil {
			return err
		}
	}
	return nil
}

// PrometheusLine renders one sample as a single exposition line
// (including the trailing newline).
func PrometheusLine(s *Sample) string {
	var b strings.Builder
	b.WriteString(s.Name)
	if len(s.Labels) > 0 {
		b.WriteByte('{')
		for i, l := range s.Labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Key)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(s.Value))
	b.WriteByte('\n')
	return b.String()
}

func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// jsonSample is the /statz wire form of one sample.
type jsonSample struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	Help   string            `json:"help,omitempty"`
}

// WriteJSON renders all samples as a JSON array (the /statz endpoint).
func (r *Registry) WriteJSON(w io.Writer) error {
	samples := r.Gather()
	out := make([]jsonSample, len(samples))
	for i, s := range samples {
		js := jsonSample{Name: s.Name, Kind: s.Kind.String(), Value: s.Value, Help: s.Help}
		if len(s.Labels) > 0 {
			js.Labels = make(map[string]string, len(s.Labels))
			for _, l := range s.Labels {
				js.Labels[l.Key] = l.Value
			}
		}
		out[i] = js
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
