package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGather(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tcq_test_total", "test counter", L("module", "a"))
	c.Add(3)
	c.Inc()
	// Same name+labels returns the same counter.
	if c2 := r.Counter("tcq_test_total", "test counter", L("module", "a")); c2 != c {
		t.Fatal("re-registration did not return the existing counter")
	}
	r.GaugeFunc("tcq_test_depth", "test gauge", func() float64 { return 2.5 }, L("q", "x"))
	r.Register(func(emit Emit) {
		emit(Sample{Name: "tcq_collected", Kind: KindGauge, Value: 7})
	})
	samples := r.Gather()
	if len(samples) != 3 {
		t.Fatalf("got %d samples, want 3", len(samples))
	}
	byName := map[string]Sample{}
	for _, s := range samples {
		byName[s.Name] = s
	}
	if byName["tcq_test_total"].Value != 4 {
		t.Fatalf("counter = %v, want 4", byName["tcq_test_total"].Value)
	}
	if byName["tcq_test_depth"].Value != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", byName["tcq_test_depth"].Value)
	}
	if byName["tcq_collected"].Value != 7 {
		t.Fatalf("collected = %v, want 7", byName["tcq_collected"].Value)
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("tcq_routed_total", "tuples routed", L("module", `f"1`), L("eo", "0")).Add(12)
	r.GaugeFunc("tcq_depth", "queue depth", func() float64 { return 1.5 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE tcq_routed_total counter",
		"# HELP tcq_routed_total tuples routed",
		`tcq_routed_total{eo="0",module="f\"1"} 12`,
		"# TYPE tcq_depth gauge",
		"tcq_depth 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestJSONAndHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("tcq_x_total", "x", L("k", "v")).Add(9)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String()
	}
	if got := get("/metrics"); !strings.Contains(got, `tcq_x_total{k="v"} 9`) {
		t.Fatalf("/metrics: %s", got)
	}
	statz := get("/statz")
	var parsed []map[string]any
	if err := json.Unmarshal([]byte(statz), &parsed); err != nil {
		t.Fatalf("/statz not valid JSON: %v\n%s", err, statz)
	}
	if len(parsed) != 1 || parsed[0]["name"] != "tcq_x_total" || parsed[0]["value"] != 9.0 {
		t.Fatalf("/statz content: %v", parsed)
	}
	if got := get("/healthz"); !strings.Contains(got, "ok") {
		t.Fatalf("/healthz: %s", got)
	}
}

// TestConcurrentScrape hammers a counter from many goroutines while
// gathering — the registry contract scrapers rely on (run with -race).
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tcq_race_total", "")
	r.GaugeFunc("tcq_race_gauge", "", func() float64 { return float64(c.Load()) })
	const goroutines, perG = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() {
		defer scrapes.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				_ = r.WritePrometheus(&b)
			}
		}
	}()
	wg.Wait()
	close(stop)
	scrapes.Wait()
	if got := c.Load(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}
