// Package sql implements the TelegraphCQ query dialect: DDL for streams
// and tables, INSERT for tables, and continuous SELECT queries with the
// paper's for-loop window construct (§4.1):
//
//	SELECT avg(closingPrice) FROM ClosingStockPrices
//	WHERE stockSymbol = 'MSFT'
//	FOR (t = ST; t < ST + 50; t += 5) {
//	    WINDOWIS(ClosingStockPrices, t - 4, t);
//	}
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// symbols, longest first so the lexer is greedy.
var symbols = []string{
	"<=", ">=", "!=", "<>", "==", "++", "+=", "-=",
	"=", "<", ">", "+", "-", "*", "/", "%", "(", ")", "{", "}", ",", ";", ".",
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src. SQL keywords stay tokIdent; the parser matches them
// case-insensitively.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '\'':
			s, err := l.lexString()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokString, text: s, pos: start})
		case unicode.IsDigit(rune(c)):
			l.toks = append(l.toks, token{kind: tokNumber, text: l.lexNumber(), pos: start})
		case unicode.IsLetter(rune(c)) || c == '_':
			l.toks = append(l.toks, token{kind: tokIdent, text: l.lexIdent(), pos: start})
		default:
			sym := l.lexSymbol()
			if sym == "" {
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, l.pos)
			}
			l.toks = append(l.toks, token{kind: tokSymbol, text: sym, pos: start})
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			// -- line comment
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		l.pos++
	}
}

func (l *lexer) lexString() (string, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("sql: unterminated string literal")
}

func (l *lexer) lexNumber() string {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsDigit(rune(c)) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1])) {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexIdent() string {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			l.pos++
			continue
		}
		break
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexSymbol() string {
	rest := l.src[l.pos:]
	for _, s := range symbols {
		if strings.HasPrefix(rest, s) {
			l.pos += len(s)
			return s
		}
	}
	return ""
}
