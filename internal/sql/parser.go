package sql

import (
	"fmt"
	"strconv"
	"strings"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/fjord"
	"telegraphcq/internal/operator"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
)

// Parse parses one statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, fmt.Errorf("sql: unexpected %s after statement", p.peek())
	}
	return st, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(src string) ([]Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Statement
	for !p.atEOF() {
		if p.accept(";") {
			continue
		}
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		if !p.accept(";") && !p.atEOF() {
			return nil, fmt.Errorf("sql: expected ';' before %s", p.peek())
		}
	}
	return out, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

// accept consumes the next token if it matches text (symbols exactly,
// identifiers case-insensitively).
func (p *parser) accept(text string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == text {
		p.i++
		return true
	}
	if t.kind == tokIdent && strings.EqualFold(t.text, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return fmt.Errorf("sql: expected %q, found %s", text, p.peek())
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sql: expected identifier, found %s", t)
	}
	p.i++
	return t.text, nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.accept("create"):
		return p.create()
	case p.accept("insert"):
		return p.insert()
	case p.accept("drop"):
		return p.drop()
	case p.accept("select"):
		return p.selectStmt()
	case p.accept("show"):
		return p.show()
	case p.accept("subscribe"):
		return p.subscribe()
	default:
		return nil, fmt.Errorf("sql: expected statement, found %s", p.peek())
	}
}

// show parses "SHOW STATS [LIKE 'prefix']".
func (p *parser) show() (Statement, error) {
	if err := p.expect("stats"); err != nil {
		return nil, err
	}
	st := &ShowStats{}
	if p.accept("like") {
		t := p.peek()
		if t.kind != tokString {
			return nil, fmt.Errorf("sql: SHOW STATS LIKE expects a string, found %s", t)
		}
		p.i++
		st.Like = t.text
	}
	return st, nil
}

// ------------------------------------------------------------------ DDL

func (p *parser) create() (Statement, error) {
	isStream := p.accept("stream")
	if !isStream {
		if err := p.expect("table"); err != nil {
			return nil, err
		}
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var cols []tuple.Column
	for {
		cname, err := p.ident()
		if err != nil {
			return nil, err
		}
		tname, err := p.ident()
		if err != nil {
			return nil, err
		}
		kind, err := tuple.ParseKind(strings.ToLower(tname))
		if err != nil {
			return nil, fmt.Errorf("sql: column %s: %w", cname, err)
		}
		cols = append(cols, tuple.Column{Name: cname, Kind: kind})
		if p.accept(",") {
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if isStream {
		archived := p.accept("archived")
		with, err := p.streamWith()
		if err != nil {
			return nil, err
		}
		return &CreateStream{Name: name, Cols: cols, Archived: archived, With: with}, nil
	}
	return &CreateTable{Name: name, Cols: cols}, nil
}

// streamWith parses the optional "WITH (key = value, ...)" options of
// CREATE STREAM. Keys: overflow (policy name), rate (sample admit
// probability), timeout_ms (block wait bound).
func (p *parser) streamWith() (*StreamWith, error) {
	if !p.accept("with") {
		return nil, nil
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	w := &StreamWith{}
	for {
		key, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		switch strings.ToLower(key) {
		case "overflow":
			t := p.peek()
			if t.kind != tokString && t.kind != tokIdent {
				return nil, fmt.Errorf("sql: overflow wants a policy name, found %s", t)
			}
			p.i++
			if _, err := fjord.ParseOverflowPolicy(t.text); err != nil {
				return nil, fmt.Errorf("sql: %w", err)
			}
			w.Overflow = t.text
		case "rate":
			t := p.peek()
			if t.kind != tokNumber {
				return nil, fmt.Errorf("sql: rate wants a number, found %s", t)
			}
			p.i++
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil || f < 0 || f > 1 {
				return nil, fmt.Errorf("sql: rate wants a probability in [0,1], got %q", t.text)
			}
			w.SampleP = f
		case "timeout_ms":
			n, err := p.signedInt()
			if err != nil {
				return nil, err
			}
			if n < 0 {
				return nil, fmt.Errorf("sql: timeout_ms must be non-negative, got %d", n)
			}
			w.TimeoutMs = n
		default:
			return nil, fmt.Errorf("sql: unknown stream option %q (want overflow, rate, or timeout_ms)", key)
		}
		if p.accept(",") {
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return w, nil
}

func (p *parser) insert() (Statement, error) {
	if err := p.expect("into"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("values"); err != nil {
		return nil, err
	}
	var rows [][]tuple.Value
	for {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var row []tuple.Value
		for {
			v, err := p.literalValue()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.accept(",") {
				continue
			}
			break
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if p.accept(",") {
			continue
		}
		break
	}
	return &Insert{Table: name, Rows: rows}, nil
}

func (p *parser) literalValue() (tuple.Value, error) {
	neg := false
	if p.peek().kind == tokSymbol && p.peek().text == "-" {
		p.i++
		neg = true
	}
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.i++
		v, err := parseNumber(t.text)
		if err != nil {
			return tuple.Null(), err
		}
		if neg {
			if v.K == tuple.KindInt {
				v = tuple.Int(-v.I)
			} else {
				v = tuple.Float(-v.F)
			}
		}
		return v, nil
	case t.kind == tokString:
		p.i++
		return tuple.String(t.text), nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "true"):
		p.i++
		return tuple.Bool(true), nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "false"):
		p.i++
		return tuple.Bool(false), nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "null"):
		p.i++
		return tuple.Null(), nil
	}
	return tuple.Null(), fmt.Errorf("sql: expected literal, found %s", t)
}

func parseNumber(text string) (tuple.Value, error) {
	if strings.ContainsRune(text, '.') {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return tuple.Null(), fmt.Errorf("sql: bad number %q", text)
		}
		return tuple.Float(f), nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return tuple.Null(), fmt.Errorf("sql: bad number %q", text)
	}
	return tuple.Int(i), nil
}

func (p *parser) drop() (Statement, error) {
	if !p.accept("stream") && !p.accept("table") {
		return nil, fmt.Errorf("sql: expected STREAM or TABLE after DROP")
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropSource{Name: name}, nil
}

// --------------------------------------------------------------- SELECT

var reservedAfterExpr = map[string]bool{
	"from": true, "where": true, "group": true, "order": true,
	"limit": true, "for": true, "as": true, "and": true, "or": true,
	"not": true, "asc": true, "desc": true, "by": true, "with": true,
}

// subscribe parses "SUBSCRIBE <query-id> [WITH (...)]" and
// "SUBSCRIBE SELECT ... [WITH (...)]".
func (p *parser) subscribe() (Statement, error) {
	st := &Subscribe{}
	if p.accept("select") {
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		st.Sel = sel.(*Select)
	} else {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sql: SUBSCRIBE wants a query id or SELECT, found %s", t)
		}
		p.i++
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sql: bad query id %q", t.text)
		}
		st.Query = n
	}
	w, err := p.subscribeWith()
	if err != nil {
		return nil, err
	}
	st.With = w
	return st, nil
}

// subscribeWith parses the optional "WITH (key = value, ...)" options
// of SUBSCRIBE. Keys: overflow (policy name), rate (sample admit
// probability), timeout_ms (block wait bound), cohort (shared-cursor
// name), queue (frame ring capacity), replay (true/false).
func (p *parser) subscribeWith() (*SubscribeWith, error) {
	if !p.accept("with") {
		return nil, nil
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	w := &SubscribeWith{}
	for {
		key, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		switch strings.ToLower(key) {
		case "overflow":
			t := p.peek()
			if t.kind != tokString && t.kind != tokIdent {
				return nil, fmt.Errorf("sql: overflow wants a policy name, found %s", t)
			}
			p.i++
			if _, err := fjord.ParseOverflowPolicy(t.text); err != nil {
				return nil, fmt.Errorf("sql: %w", err)
			}
			w.Overflow = t.text
		case "rate":
			t := p.peek()
			if t.kind != tokNumber {
				return nil, fmt.Errorf("sql: rate wants a number, found %s", t)
			}
			p.i++
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil || f < 0 || f > 1 {
				return nil, fmt.Errorf("sql: rate wants a probability in [0,1], got %q", t.text)
			}
			w.SampleP = f
		case "timeout_ms":
			n, err := p.signedInt()
			if err != nil {
				return nil, err
			}
			if n < 0 {
				return nil, fmt.Errorf("sql: timeout_ms must be non-negative, got %d", n)
			}
			w.TimeoutMs = n
		case "cohort":
			t := p.peek()
			if t.kind != tokString && t.kind != tokIdent {
				return nil, fmt.Errorf("sql: cohort wants a name, found %s", t)
			}
			p.i++
			w.Cohort = t.text
		case "queue":
			n, err := p.signedInt()
			if err != nil {
				return nil, err
			}
			if n <= 0 {
				return nil, fmt.Errorf("sql: queue must be positive, got %d", n)
			}
			w.Queue = n
		case "replay":
			t := p.peek()
			if t.kind != tokIdent || (strings.ToLower(t.text) != "true" && strings.ToLower(t.text) != "false") {
				return nil, fmt.Errorf("sql: replay wants true or false, found %s", t)
			}
			p.i++
			w.Replay = strings.ToLower(t.text) == "true"
		default:
			return nil, fmt.Errorf("sql: unknown subscribe option %q (want overflow, rate, timeout_ms, cohort, queue, or replay)", key)
		}
		if p.accept(",") {
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return w, nil
}

func (p *parser) selectStmt() (Statement, error) {
	s := &Select{}
	s.Distinct = p.accept("distinct")

	// Select list.
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if p.accept(",") {
			continue
		}
		break
	}

	if err := p.expect("from"); err != nil {
		return nil, err
	}
	for {
		src, err := p.ident()
		if err != nil {
			return nil, err
		}
		item := FromItem{Source: src}
		if p.accept("as") {
			a, err := p.ident()
			if err != nil {
				return nil, err
			}
			item.Alias = a
		} else if t := p.peek(); t.kind == tokIdent && !reservedAfterExpr[strings.ToLower(t.text)] {
			item.Alias = t.text
			p.i++
		}
		s.From = append(s.From, item)
		if p.accept(",") {
			continue
		}
		break
	}

	if p.accept("where") {
		w, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.accept("group") {
		if err := p.expect("by"); err != nil {
			return nil, err
		}
		for {
			c, err := p.colRef()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, c)
			if p.accept(",") {
				continue
			}
			break
		}
	}
	if p.accept("order") {
		if err := p.expect("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			k := OrderKey{Expr: e}
			if p.accept("desc") {
				k.Desc = true
			} else {
				p.accept("asc")
			}
			s.OrderBy = append(s.OrderBy, k)
			if p.accept(",") {
				continue
			}
			break
		}
	}
	if p.accept("limit") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sql: expected number after LIMIT, found %s", t)
		}
		p.i++
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sql: bad LIMIT %q", t.text)
		}
		s.Limit = n
	}
	if p.accept("for") {
		w, err := p.forLoop()
		if err != nil {
			return nil, err
		}
		s.Window = w
	}
	// Optional SELECT-level options: WITH (shards=N, compiled=on|off).
	// Only a block whose first key is one the SELECT knows belongs to
	// it; anything else is left for the caller (SUBSCRIBE parses its
	// own WITH after the query).
	if t := p.peek(); t.kind == tokIdent && strings.ToLower(t.text) == "with" {
		save := p.i
		p.i++
		consumed := false
		if p.expect("(") == nil {
			if key, err := p.ident(); err == nil && selectWithKey(key) {
				for {
					if err := p.selectWithOption(s, key); err != nil {
						return nil, err
					}
					if !p.accept(",") {
						break
					}
					if key, err = p.ident(); err != nil {
						return nil, fmt.Errorf("sql: expected option name in WITH (...)")
					}
					if !selectWithKey(key) {
						return nil, fmt.Errorf("sql: unknown WITH option %q", key)
					}
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				consumed = true
			}
		}
		if !consumed {
			p.i = save
		}
	}
	return s, nil
}

// selectWithKey reports whether a WITH (...) option key belongs to the
// SELECT itself (as opposed to an enclosing SUBSCRIBE).
func selectWithKey(key string) bool {
	switch strings.ToLower(key) {
	case "shards", "compiled":
		return true
	}
	return false
}

// selectWithOption parses the "= value" tail of one SELECT WITH option.
func (p *parser) selectWithOption(s *Select, key string) error {
	if err := p.expect("="); err != nil {
		return err
	}
	switch strings.ToLower(key) {
	case "shards":
		n, err := p.signedInt()
		if err != nil {
			return err
		}
		if n < 1 || n > 64 {
			return fmt.Errorf("sql: shards wants a count in [1,64], got %d", n)
		}
		s.Shards = int(n)
	case "compiled":
		v, err := p.ident()
		if err != nil {
			return fmt.Errorf("sql: compiled wants on or off")
		}
		switch strings.ToLower(v) {
		case "on", "true":
			s.Compiled = 1
		case "off", "false":
			s.Compiled = -1
		default:
			return fmt.Errorf("sql: compiled wants on or off, got %q", v)
		}
	}
	return nil
}

func (p *parser) selectItem() (SelectItem, error) {
	if p.accept("*") {
		return SelectItem{Star: true}, nil
	}
	// Aggregate: aggname '(' ... ')'.
	if t := p.peek(); t.kind == tokIdent {
		if kind, ok := operator.ParseAggKind(strings.ToLower(t.text)); ok {
			if p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "(" {
				p.i += 2
				spec := &operator.AggSpec{Kind: kind}
				if p.accept("*") {
					if kind != operator.AggCount {
						return SelectItem{}, fmt.Errorf("sql: %s(*) is not valid", kind)
					}
				} else {
					arg, err := p.addExpr()
					if err != nil {
						return SelectItem{}, err
					}
					spec.Arg = arg
				}
				if err := p.expect(")"); err != nil {
					return SelectItem{}, err
				}
				item := SelectItem{Agg: spec}
				if p.accept("as") {
					a, err := p.ident()
					if err != nil {
						return SelectItem{}, err
					}
					spec.As = a
					item.As = a
				}
				return item, nil
			}
		}
	}
	e, err := p.addExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept("as") {
		a, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.As = a
	}
	// "source.*" projection of one input.
	if c, ok := e.(*expr.ColumnRef); ok && c.Name == "*" {
		item = SelectItem{Star: true, Expr: nil, As: c.Source}
	}
	return item, nil
}

// ----------------------------------------------------- expressions

func (p *parser) orExpr() (expr.Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept("or") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = expr.Bin(expr.OpOr, left, right)
	}
	return left, nil
}

func (p *parser) andExpr() (expr.Expr, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept("and") {
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		left = expr.Bin(expr.OpAnd, left, right)
	}
	return left, nil
}

func (p *parser) notExpr() (expr.Expr, error) {
	if p.accept("not") {
		child, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return expr.Not(child), nil
	}
	return p.cmpExpr()
}

var cmpOps = map[string]expr.Op{
	"=": expr.OpEq, "==": expr.OpEq, "!=": expr.OpNe, "<>": expr.OpNe,
	"<": expr.OpLt, "<=": expr.OpLe, ">": expr.OpGt, ">=": expr.OpGe,
}

func (p *parser) cmpExpr() (expr.Expr, error) {
	left, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokSymbol {
		if op, ok := cmpOps[t.text]; ok {
			p.i++
			right, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return expr.Bin(op, left, right), nil
		}
	}
	return left, nil
}

func (p *parser) addExpr() (expr.Expr, error) {
	left, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "+" && t.text != "-") {
			return left, nil
		}
		p.i++
		right, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		op := expr.OpAdd
		if t.text == "-" {
			op = expr.OpSub
		}
		left = expr.Bin(op, left, right)
	}
}

func (p *parser) mulExpr() (expr.Expr, error) {
	left, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "*" && t.text != "/" && t.text != "%") {
			return left, nil
		}
		p.i++
		right, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		var op expr.Op
		switch t.text {
		case "*":
			op = expr.OpMul
		case "/":
			op = expr.OpDiv
		default:
			op = expr.OpMod
		}
		left = expr.Bin(op, left, right)
	}
}

func (p *parser) unaryExpr() (expr.Expr, error) {
	if t := p.peek(); t.kind == tokSymbol && t.text == "-" {
		p.i++
		child, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return expr.Neg(child), nil
	}
	return p.primary()
}

func (p *parser) primary() (expr.Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.i++
		v, err := parseNumber(t.text)
		if err != nil {
			return nil, err
		}
		return expr.Lit(v), nil
	case t.kind == tokString:
		p.i++
		return expr.Lit(tuple.String(t.text)), nil
	case t.kind == tokSymbol && t.text == "(":
		p.i++
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "true"):
		p.i++
		return expr.Lit(tuple.Bool(true)), nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "false"):
		p.i++
		return expr.Lit(tuple.Bool(false)), nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "null"):
		p.i++
		return expr.Lit(tuple.Null()), nil
	case t.kind == tokIdent:
		return p.colRef()
	}
	return nil, fmt.Errorf("sql: expected expression, found %s", t)
}

// colRef parses ident['.'(ident|'*')].
func (p *parser) colRef() (*expr.ColumnRef, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if p.accept(".") {
		if p.accept("*") {
			return expr.Col(name, "*"), nil
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		return expr.Col(name, col), nil
	}
	return expr.Col("", name), nil
}

// ----------------------------------------------------- for-loop windows

// forLoop parses "[PHYSICAL] ( [t = init]; [cond]; [step] ) {
// WindowIs(...); ... }". With PHYSICAL, the loop variable and bounds are
// wall-clock milliseconds instead of per-stream sequence numbers (§4.1:
// "multiple simultaneous notions of time, such as logical sequence
// numbers or physical time").
func (p *parser) forLoop() (*window.Spec, error) {
	domain := tuple.LogicalTime
	if p.accept("physical") {
		domain = tuple.PhysicalTime
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	spec := &window.Spec{Domain: domain, Cond: window.Cond{Op: window.CondTrue}}

	// init
	if !p.accept(";") {
		if err := p.expectLoopVar(); err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		init, err := p.linExpr()
		if err != nil {
			return nil, err
		}
		if init.DependsOnT() {
			return nil, fmt.Errorf("sql: window init may not reference t")
		}
		spec.Init = init
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}

	// condition
	if !p.accept(";") {
		if err := p.expectLoopVar(); err != nil {
			return nil, err
		}
		t := p.peek()
		var op window.CondOp
		switch {
		case t.kind == tokSymbol && (t.text == "==" || t.text == "="):
			op = window.CondEq
		case t.kind == tokSymbol && t.text == "<":
			op = window.CondLt
		case t.kind == tokSymbol && t.text == "<=":
			op = window.CondLe
		case t.kind == tokSymbol && t.text == ">":
			op = window.CondGt
		case t.kind == tokSymbol && t.text == ">=":
			op = window.CondGe
		default:
			return nil, fmt.Errorf("sql: bad window condition operator %s", t)
		}
		p.i++
		rhs, err := p.linExpr()
		if err != nil {
			return nil, err
		}
		if rhs.DependsOnT() {
			return nil, fmt.Errorf("sql: window condition bound may not reference t")
		}
		spec.Cond = window.Cond{Op: op, RHS: rhs}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}

	// step
	if !p.accept(")") {
		if err := p.expectLoopVar(); err != nil {
			return nil, err
		}
		t := p.peek()
		switch {
		case t.kind == tokSymbol && t.text == "++":
			p.i++
			spec.Step = 1
		case t.kind == tokSymbol && (t.text == "+=" || t.text == "-="):
			p.i++
			n, err := p.signedInt()
			if err != nil {
				return nil, err
			}
			if t.text == "-=" {
				n = -n
			}
			spec.Step = n
		case t.kind == tokSymbol && t.text == "=":
			// "t = c": representable when init is a constant — the delta
			// is c - init (the paper's snapshot idiom "for(; t==0; t=-1)").
			p.i++
			c, err := p.linExpr()
			if err != nil {
				return nil, err
			}
			if c.DependsOnT() || c.STCoef != 0 || spec.Init.TCoef != 0 || spec.Init.STCoef != 0 {
				return nil, fmt.Errorf("sql: step assignment requires constant init and step")
			}
			spec.Step = c.Const - spec.Init.Const
		default:
			return nil, fmt.Errorf("sql: bad window step %s", t)
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}

	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for !p.accept("}") {
		if err := p.expect("windowis"); err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		stream, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		left, err := p.linExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		right, err := p.linExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		p.accept(";")
		spec.Defs = append(spec.Defs, window.Def{Stream: stream, Left: left, Right: right})
	}
	if len(spec.Defs) == 0 {
		return nil, fmt.Errorf("sql: for-loop needs at least one WindowIs")
	}
	return spec, nil
}

func (p *parser) expectLoopVar() error {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, "t") {
		p.i++
		return nil
	}
	return fmt.Errorf("sql: expected loop variable t, found %s", t)
}

func (p *parser) signedInt() (int64, error) {
	neg := false
	if t := p.peek(); t.kind == tokSymbol && t.text == "-" {
		p.i++
		neg = true
	}
	t := p.peek()
	if t.kind != tokNumber || strings.ContainsRune(t.text, '.') {
		return 0, fmt.Errorf("sql: expected integer, found %s", t)
	}
	p.i++
	n, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, err
	}
	if neg {
		n = -n
	}
	return n, nil
}

// linExpr parses a linear expression over t and ST: additive terms, each
// a number, t, ST, or number*var.
func (p *parser) linExpr() (window.LinExpr, error) {
	var out window.LinExpr
	sign := int64(1)
	first := true
	for {
		if !first {
			t := p.peek()
			if t.kind == tokSymbol && t.text == "+" {
				p.i++
				sign = 1
			} else if t.kind == tokSymbol && t.text == "-" {
				p.i++
				sign = -1
			} else {
				return out, nil
			}
		} else {
			first = false
			if t := p.peek(); t.kind == tokSymbol && t.text == "-" {
				p.i++
				sign = -1
			}
		}
		term, err := p.linTerm()
		if err != nil {
			return out, err
		}
		out.TCoef += sign * term.TCoef
		out.STCoef += sign * term.STCoef
		out.Const += sign * term.Const
	}
}

func (p *parser) linTerm() (window.LinExpr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		if strings.ContainsRune(t.text, '.') {
			return window.LinExpr{}, fmt.Errorf("sql: window bounds must be integral, found %q", t.text)
		}
		p.i++
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return window.LinExpr{}, err
		}
		// optional * var
		if s := p.peek(); s.kind == tokSymbol && s.text == "*" {
			p.i++
			v, err := p.linVar()
			if err != nil {
				return window.LinExpr{}, err
			}
			return window.LinExpr{TCoef: n * v.TCoef, STCoef: n * v.STCoef}, nil
		}
		return window.LinExpr{Const: n}, nil
	case t.kind == tokIdent:
		v, err := p.linVar()
		if err != nil {
			return window.LinExpr{}, err
		}
		// optional * number
		if s := p.peek(); s.kind == tokSymbol && s.text == "*" {
			p.i++
			nt := p.peek()
			if nt.kind != tokNumber || strings.ContainsRune(nt.text, '.') {
				return window.LinExpr{}, fmt.Errorf("sql: expected integer after '*', found %s", nt)
			}
			p.i++
			n, err := strconv.ParseInt(nt.text, 10, 64)
			if err != nil {
				return window.LinExpr{}, err
			}
			return window.LinExpr{TCoef: v.TCoef * n, STCoef: v.STCoef * n}, nil
		}
		return v, nil
	}
	return window.LinExpr{}, fmt.Errorf("sql: expected window bound term, found %s", t)
}

func (p *parser) linVar() (window.LinExpr, error) {
	t := p.peek()
	if t.kind == tokIdent {
		switch strings.ToLower(t.text) {
		case "t":
			p.i++
			return window.TExpr(0), nil
		case "st":
			p.i++
			return window.STExpr(0), nil
		}
	}
	return window.LinExpr{}, fmt.Errorf("sql: expected t or ST, found %s", t)
}
