package sql

import (
	"telegraphcq/internal/expr"
	"telegraphcq/internal/operator"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// StreamWith holds the DDL options of "WITH (key = value, ...)":
// the stream's ingress overflow (QoS) policy.
type StreamWith struct {
	// Overflow names the policy: block, drop-newest, drop-oldest, sample.
	Overflow string
	// SampleP is the admit probability for overflow = 'sample'.
	SampleP float64
	// TimeoutMs bounds how long overflow = 'block' waits for space.
	TimeoutMs int64
}

// CreateStream is "CREATE STREAM name (col type, ...) [ARCHIVED]
// [WITH (overflow = ..., ...)]".
type CreateStream struct {
	Name     string
	Cols     []tuple.Column
	Archived bool
	With     *StreamWith
}

// CreateTable is "CREATE TABLE name (col type, ...)".
type CreateTable struct {
	Name string
	Cols []tuple.Column
}

// Insert is "INSERT INTO table VALUES (v, ...), (v, ...)".
type Insert struct {
	Table string
	Rows  [][]tuple.Value
}

// DropSource is "DROP STREAM name" / "DROP TABLE name".
type DropSource struct{ Name string }

// ShowStats is "SHOW STATS [LIKE 'prefix']": a point-in-time dump of the
// engine's telemetry registry (metric, labels, value). The continuous
// counterpart is a CQ over the tcq_* system streams.
type ShowStats struct{ Like string }

// SubscribeWith holds the options of "SUBSCRIBE ... WITH (...)": the
// subscriber-edge overflow (QoS) policy and cohort membership.
type SubscribeWith struct {
	// Overflow names the policy: block, drop-newest, drop-oldest, sample.
	Overflow string
	// SampleP is the admit probability for overflow = 'sample'.
	SampleP float64
	// TimeoutMs bounds how long overflow = 'block' waits for space.
	TimeoutMs int64
	// Cohort names a shared replay cursor over the query's spool.
	Cohort string
	// Queue overrides the subscriber's frame ring capacity.
	Queue int64
	// Replay forces catch-up from the spool base without a cohort.
	Replay bool
}

// Subscribe attaches a fan-out subscriber to a continuous query:
// "SUBSCRIBE <query-id> [WITH (...)]" joins a standing query;
// "SUBSCRIBE SELECT ... [WITH (...)]" submits the query first. Unlike a
// plain SELECT cursor (one push subscription per query), SUBSCRIBE
// cursors share one encode-once fan-out tree.
type Subscribe struct {
	Query int64   // target query id (the non-SELECT form)
	Sel   *Select // non-nil for the submitting form
	With  *SubscribeWith
}

// SelectItem is one entry of the SELECT list.
type SelectItem struct {
	Star bool
	// Agg is set for aggregate items (AVG(price)); Expr for scalars.
	Agg  *operator.AggSpec
	Expr expr.Expr
	As   string
}

// FromItem names one input with an optional alias.
type FromItem struct {
	Source string
	Alias  string
}

// Name returns the alias if present, else the source name.
func (f FromItem) Name() string {
	if f.Alias != "" {
		return f.Alias
	}
	return f.Source
}

// OrderKey is one ORDER BY term.
type OrderKey struct {
	Expr expr.Expr
	Desc bool
}

// Select is a (continuous) query.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []FromItem
	Where    expr.Expr
	GroupBy  []*expr.ColumnRef
	OrderBy  []OrderKey
	Limit    int64 // 0 = unlimited
	// Window is the parsed for-loop construct; nil for unwindowed CQs.
	Window *window.Spec
	// Shards is the WITH (shards=N) placement hint: run the query's EO
	// as N hash-partitioned eddy shards. 0 = executor default.
	Shards int
	// Compiled is the WITH (compiled=on|off) expression-path hint for
	// the EO this query creates: 0 = executor default, 1 = compiled
	// bytecode, -1 = tree-walking interpreter.
	Compiled int8
}

func (*CreateStream) stmt() {}
func (*CreateTable) stmt()  {}
func (*Insert) stmt()       {}
func (*DropSource) stmt()   {}
func (*ShowStats) stmt()    {}
func (*Select) stmt()       {}
func (*Subscribe) stmt()    {}
