package sql

import (
	"strings"
	"testing"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/operator"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
)

func parseSelect(t *testing.T, src string) *Select {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	s, ok := st.(*Select)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *Select", src, st)
	}
	return s
}

func TestCreateStream(t *testing.T) {
	st, err := Parse(`CREATE STREAM ClosingStockPrices (
		timestamp long, stockSymbol char, closingPrice float) ARCHIVED;`)
	if err != nil {
		t.Fatal(err)
	}
	cs := st.(*CreateStream)
	if cs.Name != "ClosingStockPrices" || len(cs.Cols) != 3 || !cs.Archived {
		t.Fatalf("parsed: %+v", cs)
	}
	if cs.Cols[0].Kind != tuple.KindInt || cs.Cols[1].Kind != tuple.KindString ||
		cs.Cols[2].Kind != tuple.KindFloat {
		t.Fatalf("kinds: %+v", cs.Cols)
	}
}

func TestCreateStreamWithOptions(t *testing.T) {
	st, err := Parse(`CREATE STREAM ticks (price float) ARCHIVED
		WITH (overflow = 'drop-oldest')`)
	if err != nil {
		t.Fatal(err)
	}
	cs := st.(*CreateStream)
	if !cs.Archived || cs.With == nil || cs.With.Overflow != "drop-oldest" {
		t.Fatalf("parsed: %+v with %+v", cs, cs.With)
	}

	st, err = Parse(`CREATE STREAM s (v int) WITH (overflow = block, timeout_ms = 250)`)
	if err != nil {
		t.Fatal(err)
	}
	cs = st.(*CreateStream)
	if cs.With == nil || cs.With.Overflow != "block" || cs.With.TimeoutMs != 250 {
		t.Fatalf("parsed with: %+v", cs.With)
	}

	st, err = Parse(`CREATE STREAM s (v int) WITH (overflow = 'sample', rate = 0.25)`)
	if err != nil {
		t.Fatal(err)
	}
	cs = st.(*CreateStream)
	if cs.With == nil || cs.With.Overflow != "sample" || cs.With.SampleP != 0.25 {
		t.Fatalf("parsed with: %+v", cs.With)
	}

	// No WITH clause leaves the options nil (historical default).
	st, err = Parse(`CREATE STREAM s (v int)`)
	if err != nil {
		t.Fatal(err)
	}
	if st.(*CreateStream).With != nil {
		t.Fatal("expected nil With without a WITH clause")
	}

	for _, bad := range []string{
		`CREATE STREAM s (v int) WITH (overflow = 'lossy')`,
		`CREATE STREAM s (v int) WITH (frobnicate = 1)`,
		`CREATE STREAM s (v int) WITH (rate = 1.5)`,
		`CREATE STREAM s (v int) WITH (timeout_ms = -5)`,
		`CREATE STREAM s (v int) WITH (overflow = 'block'`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("%q should not parse", bad)
		}
	}
}

func TestCreateTableAndInsert(t *testing.T) {
	st, err := Parse(`CREATE TABLE companies (sym string, hq string)`)
	if err != nil {
		t.Fatal(err)
	}
	if ct := st.(*CreateTable); ct.Name != "companies" || len(ct.Cols) != 2 {
		t.Fatalf("parsed: %+v", st)
	}
	st, err = Parse(`INSERT INTO companies VALUES ('MSFT', 'Redmond'), ('IBM', 'Armonk')`)
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*Insert)
	if ins.Table != "companies" || len(ins.Rows) != 2 || ins.Rows[1][1].S != "Armonk" {
		t.Fatalf("parsed: %+v", ins)
	}
}

func TestInsertLiteralKinds(t *testing.T) {
	st, err := Parse(`INSERT INTO x VALUES (1, -2.5, 'a''b', true, false, null)`)
	if err != nil {
		t.Fatal(err)
	}
	row := st.(*Insert).Rows[0]
	if row[0].I != 1 || row[1].F != -2.5 || row[2].S != "a'b" ||
		!row[3].B || row[4].B || !row[5].IsNull() {
		t.Fatalf("row: %v", row)
	}
}

func TestDrop(t *testing.T) {
	st, err := Parse(`DROP STREAM s`)
	if err != nil || st.(*DropSource).Name != "s" {
		t.Fatalf("%v %v", st, err)
	}
	if _, err := Parse(`DROP s`); err == nil {
		t.Fatal("DROP without kind accepted")
	}
}

// Paper example 1: snapshot query.
func TestPaperSnapshotQuery(t *testing.T) {
	s := parseSelect(t, `
		SELECT closingPrice, timestamp
		FROM ClosingStockPrices
		WHERE stockSymbol = 'MSFT'
		for (; t == 0; t = -1) {
			WindowIs(ClosingStockPrices, 1, 5);
		}`)
	if len(s.Items) != 2 || s.From[0].Source != "ClosingStockPrices" {
		t.Fatalf("select: %+v", s)
	}
	if s.Window == nil {
		t.Fatal("no window parsed")
	}
	if err := s.Window.Validate(); err != nil {
		t.Fatal(err)
	}
	k, _, _ := s.Window.Classify()
	if k != window.KindSnapshot {
		t.Fatalf("kind = %v", k)
	}
	seq := window.NewSequence(s.Window, 0)
	inst, ok := seq.Next()
	if !ok || inst.Ranges["ClosingStockPrices"] != (window.Range{Left: 1, Right: 5}) {
		t.Fatalf("window: %+v %v", inst, ok)
	}
	if _, again := seq.Next(); again {
		t.Fatal("snapshot repeated")
	}
}

// Paper example 2: landmark query.
func TestPaperLandmarkQuery(t *testing.T) {
	s := parseSelect(t, `
		SELECT closingPrice, timestamp
		FROM ClosingStockPrices
		WHERE stockSymbol = 'MSFT' and closingPrice > 50.00
		for (t = 101; t <= 1000; t++) {
			WindowIs(ClosingStockPrices, 101, t);
		}`)
	k, _, _ := s.Window.Classify()
	if k != window.KindLandmark {
		t.Fatalf("kind = %v", k)
	}
	if s.Window.Step != 1 || s.Window.Cond.Op != window.CondLe {
		t.Fatalf("loop: %+v", s.Window)
	}
	// WHERE decomposes into two range factors.
	factors := expr.Conjuncts(s.Where)
	if len(factors) != 2 {
		t.Fatalf("factors = %d", len(factors))
	}
	for _, f := range factors {
		if _, ok := expr.AsRangeFactor(f); !ok {
			t.Fatalf("not a range factor: %s", f)
		}
	}
}

// Paper example 3: sliding (hopping) aggregate.
func TestPaperSlidingQuery(t *testing.T) {
	s := parseSelect(t, `
		Select AVG(closingPrice)
		From ClosingStockPrices
		Where stockSymbol = 'MSFT'
		for (t = ST; t < ST + 50; t += 5) {
			WindowIs(ClosingStockPrices, t - 4, t);
		}`)
	if len(s.Items) != 1 || s.Items[0].Agg == nil || s.Items[0].Agg.Kind != operator.AggAvg {
		t.Fatalf("items: %+v", s.Items)
	}
	k, width, hop := s.Window.Classify()
	if k != window.KindSliding || width != 5 || hop != 5 {
		t.Fatalf("classify: %v %d %d", k, width, hop)
	}
	seq := window.NewSequence(s.Window, 100)
	inst, _ := seq.Next()
	if inst.Ranges["ClosingStockPrices"] != (window.Range{Left: 96, Right: 100}) {
		t.Fatalf("first window: %+v", inst)
	}
}

// Paper example 4: temporal band join with aliases.
func TestPaperBandJoinQuery(t *testing.T) {
	s := parseSelect(t, `
		Select c2.*
		FROM ClosingStockPrices as c1, ClosingStockPrices as c2
		WHERE c1.stockSymbol = 'MSFT' and
			c2.stockSymbol != 'MSFT' and
			c2.closingPrice > c1.closingPrice and
			c2.timestamp = c1.timestamp
		for (t = ST; t < ST + 20; t++) {
			WindowIs(c1, t - 4, t);
			WindowIs(c2, t - 4, t);
		}`)
	if len(s.From) != 2 || s.From[0].Alias != "c1" || s.From[1].Alias != "c2" {
		t.Fatalf("from: %+v", s.From)
	}
	if !s.Items[0].Star || s.Items[0].As != "c2" {
		t.Fatalf("c2.* item: %+v", s.Items[0])
	}
	factors := expr.Conjuncts(s.Where)
	if len(factors) != 4 {
		t.Fatalf("factors = %d", len(factors))
	}
	joins := 0
	for _, f := range factors {
		if _, ok := expr.AsJoinFactor(f); ok {
			joins++
		}
	}
	if joins != 2 {
		t.Fatalf("join factors = %d", joins)
	}
	if len(s.Window.Defs) != 2 {
		t.Fatalf("window defs: %+v", s.Window.Defs)
	}
}

func TestSelectStar(t *testing.T) {
	s := parseSelect(t, `SELECT * FROM s`)
	if len(s.Items) != 1 || !s.Items[0].Star {
		t.Fatalf("items: %+v", s.Items)
	}
}

func TestSelectDistinctGroupOrderLimit(t *testing.T) {
	s := parseSelect(t, `
		SELECT DISTINCT sym, count(*) AS n
		FROM trades
		GROUP BY sym
		ORDER BY sym DESC, n
		LIMIT 10`)
	if !s.Distinct || len(s.GroupBy) != 1 || s.GroupBy[0].Name != "sym" {
		t.Fatalf("parsed: %+v", s)
	}
	if len(s.OrderBy) != 2 || !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Fatalf("order: %+v", s.OrderBy)
	}
	if s.Limit != 10 {
		t.Fatalf("limit = %d", s.Limit)
	}
	if s.Items[1].Agg == nil || s.Items[1].Agg.Kind != operator.AggCount || s.Items[1].As != "n" {
		t.Fatalf("agg item: %+v", s.Items[1])
	}
}

func TestImplicitAlias(t *testing.T) {
	s := parseSelect(t, `SELECT x FROM stream1 a, stream2 b WHERE a.x = b.y`)
	if s.From[0].Alias != "a" || s.From[1].Alias != "b" {
		t.Fatalf("aliases: %+v", s.From)
	}
}

func TestExpressionPrecedence(t *testing.T) {
	s := parseSelect(t, `SELECT a FROM s WHERE a + 2 * 3 = 7 OR NOT b > 1 AND c < 2`)
	// (a + (2*3)) = 7 OR ((NOT b>1) AND c<2)
	or, ok := s.Where.(*expr.Binary)
	if !ok || or.Op != expr.OpOr {
		t.Fatalf("top: %s", s.Where)
	}
	str := s.Where.String()
	if !strings.Contains(str, "(2 * 3)") {
		t.Fatalf("mul precedence: %s", str)
	}
	and, ok := or.Right.(*expr.Binary)
	if !ok || and.Op != expr.OpAnd {
		t.Fatalf("right: %s", or.Right)
	}
}

func TestWindowBoundForms(t *testing.T) {
	cases := map[string]window.LinExpr{
		"WindowIs(s, 5, t)":           window.TExpr(0),
		"WindowIs(s, 5, t + 3)":       window.TExpr(3),
		"WindowIs(s, 5, ST - 2)":      window.STExpr(-2),
		"WindowIs(s, 5, 2 * t)":       {TCoef: 2},
		"WindowIs(s, 5, t * 2)":       {TCoef: 2},
		"WindowIs(s, 5, -t)":          {TCoef: -1},
		"WindowIs(s, 5, t + ST + 1)":  {TCoef: 1, STCoef: 1, Const: 1},
		"WindowIs(s, 5, -4)":          window.ConstExpr(-4),
		"WindowIs(s, 5, t - ST - 10)": {TCoef: 1, STCoef: -1, Const: -10},
	}
	for src, want := range cases {
		s := parseSelect(t, `SELECT a FROM s for (t = 0; ; t++) { `+src+` }`)
		got := s.Window.Defs[0].Right
		if got != want {
			t.Errorf("%s: right = %+v, want %+v", src, got, want)
		}
	}
}

func TestForLoopDefaults(t *testing.T) {
	// All three clauses empty: continuous from t=0 stepping... step empty
	// means Step 0 which fails validation unless one-shot; parser allows
	// it, validation rejects — check the parse only.
	s := parseSelect(t, `SELECT a FROM s for (;;) { WindowIs(s, t-4, t) }`)
	if s.Window.Cond.Op != window.CondTrue || s.Window.Step != 0 {
		t.Fatalf("defaults: %+v", s.Window)
	}
}

func TestForLoopStepVariants(t *testing.T) {
	for src, want := range map[string]int64{
		"t++":    1,
		"t -= 1": -1,
		"t += 7": 7,
		"t -= 3": -3,
		"t = -1": -1, // with init t=0
	} {
		s := parseSelect(t, `SELECT a FROM s for (t = 0; t == 0; `+src+`) { WindowIs(s, 1, 2) }`)
		if s.Window.Step != want {
			t.Errorf("%s: step = %d, want %d", src, s.Window.Step, want)
		}
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript(`
		CREATE STREAM s (a int);
		-- a comment
		SELECT a FROM s;
		CREATE TABLE u (b float);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("statements = %d", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC a FROM s",
		"SELECT FROM s",
		"SELECT a",
		"SELECT a FROM s WHERE",
		"SELECT a FROM s LIMIT x",
		"CREATE STREAM (a int)",
		"CREATE STREAM s (a blobby)",
		"INSERT INTO t VALUES (1",
		"SELECT a FROM s for (x = 0; ; t++) { WindowIs(s,1,2) }",
		"SELECT a FROM s for (t = t; ; t++) { WindowIs(s,1,2) }",
		"SELECT a FROM s for (t = 0; t < t; t++) { WindowIs(s,1,2) }",
		"SELECT a FROM s for (t = 0; ; t *= 2) { WindowIs(s,1,2) }",
		"SELECT a FROM s for (t = ST; ; t = 5) { WindowIs(s,1,2) }",
		"SELECT a FROM s for (t = 0; ; t++) { WindowIs(s, 1.5, 2) }",
		"SELECT a FROM s for (t = 0; ; t++) { }",
		"SELECT sum(*) FROM s",
		"SELECT 'unterminated FROM s",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestLexerEdgeCases(t *testing.T) {
	toks, err := lex("a<=b<>c!='x''y'--comment\n3.5.")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.kind != tokEOF {
			texts = append(texts, tk.text)
		}
	}
	want := []string{"a", "<=", "b", "<>", "c", "!=", "x'y", "3.5", "."}
	if len(texts) != len(want) {
		t.Fatalf("tokens: %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if _, err := lex("@"); err == nil {
		t.Fatal("bad character accepted")
	}
}

func TestAggCaseInsensitive(t *testing.T) {
	s := parseSelect(t, `SELECT MiN(a), MAX(b), StdDev(c) FROM s`)
	kinds := []operator.AggKind{operator.AggMin, operator.AggMax, operator.AggStdDev}
	for i, k := range kinds {
		if s.Items[i].Agg == nil || s.Items[i].Agg.Kind != k {
			t.Fatalf("item %d: %+v", i, s.Items[i])
		}
	}
}

func TestEmptyWindowIsRejected(t *testing.T) {
	s := parseSelect(t, `SELECT a FROM s for (t = 0; t == 0; t = -1) { WindowIs(s, 1, 5); }`)
	if err := s.Window.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPhysicalWindowDomain(t *testing.T) {
	s := parseSelect(t, `
		SELECT count(*) FROM s
		FOR PHYSICAL (t = ST; ; t += 1000) { WindowIs(s, t - 999, t) }`)
	if s.Window.Domain != tuple.PhysicalTime {
		t.Fatalf("domain = %v", s.Window.Domain)
	}
	// Default stays logical.
	s = parseSelect(t, `SELECT count(*) FROM s FOR (t = ST; ; t++) { WindowIs(s, t, t) }`)
	if s.Window.Domain != tuple.LogicalTime {
		t.Fatalf("default domain = %v", s.Window.Domain)
	}
}

func TestSubscribeById(t *testing.T) {
	st, err := Parse(`SUBSCRIBE 7`)
	if err != nil {
		t.Fatal(err)
	}
	sub := st.(*Subscribe)
	if sub.Query != 7 || sub.Sel != nil || sub.With != nil {
		t.Fatalf("parsed: %+v", sub)
	}
}

func TestSubscribeByIdWithOptions(t *testing.T) {
	st, err := Parse(`SUBSCRIBE 3 WITH (overflow = 'drop-oldest', queue = 128,
		cohort = 'dashboard', replay = true, timeout_ms = 50, rate = 0.25)`)
	if err != nil {
		t.Fatal(err)
	}
	sub := st.(*Subscribe)
	w := sub.With
	if sub.Query != 3 || w == nil {
		t.Fatalf("parsed: %+v", sub)
	}
	if w.Overflow != "drop-oldest" || w.Queue != 128 || w.Cohort != "dashboard" ||
		!w.Replay || w.TimeoutMs != 50 || w.SampleP != 0.25 {
		t.Fatalf("with: %+v", w)
	}
}

func TestSubscribeSelectForm(t *testing.T) {
	st, err := Parse(`SUBSCRIBE SELECT sym, price FROM trades WHERE price > 10
		WITH (overflow = block)`)
	if err != nil {
		t.Fatal(err)
	}
	sub := st.(*Subscribe)
	if sub.Sel == nil || len(sub.Sel.Items) != 2 || sub.Sel.Where == nil {
		t.Fatalf("select: %+v", sub.Sel)
	}
	if sub.With == nil || sub.With.Overflow != "block" {
		t.Fatalf("with: %+v", sub.With)
	}
}

func TestSubscribeRejectsBadOptions(t *testing.T) {
	for _, src := range []string{
		`SUBSCRIBE`,                             // no id or SELECT
		`SUBSCRIBE trades`,                      // not an id
		`SUBSCRIBE 1 WITH (overflow = 'bogus')`, // unknown policy
		`SUBSCRIBE 1 WITH (queue = 0)`,          // non-positive ring
		`SUBSCRIBE 1 WITH (rate = 2)`,           // probability out of range
		`SUBSCRIBE 1 WITH (replay = maybe)`,     // not a boolean
		`SUBSCRIBE 1 WITH (timeout_ms = -5)`,    // negative wait
		`SUBSCRIBE 1 WITH (compression = 'gz')`, // unknown key
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}
