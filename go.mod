module telegraphcq

go 1.22
