// Cluster scale-out with Flux (§2.4): a partitioned per-host bandwidth
// aggregate runs across a simulated shared-nothing cluster. Mid-stream,
// one machine slows down — the controller repartitions its buckets away
// while processing continues. Then a machine fails outright — with
// process-pair replication, the failover is lossless.
//
// Run with:
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/flux"
	"telegraphcq/internal/workload"
)

func main() {
	const n = 3000
	rows := (workload.Flows{Hosts: 32, Seed: 21}).Rows(n)
	// Ground truth for the final comparison.
	truth := map[string]int64{}
	for _, r := range rows {
		truth[r.Values[0].S]++
	}

	f, err := flux.New(flux.Config{
		Machines:       4,
		Buckets:        32,
		QueueCap:       32,
		Replication:    true, // process pairs: every bucket has a standby
		PerTupleCostNs: 100_000,
	}, expr.Col("", "src"), expr.Col("", "bytes"))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	start := time.Now()
	for i, r := range rows {
		// The flow workload is Zipf-skewed, so hot buckets keep the
		// rebalancer busy; the slow-machine sweep is in tcqbench -run E6.
		switch i {
		case 2 * n / 3:
			f.Barrier()
			fmt.Printf("t=%v  machine 1 FAILS — process pair takes over\n",
				time.Since(start).Round(time.Millisecond))
			if err := f.Kill(1); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := f.Route(r); err != nil {
			log.Fatal(err)
		}
		if i%200 == 199 {
			if moved, _ := f.Rebalance(); moved {
				_, _, moves := f.Stats()
				fmt.Printf("t=%v  repartitioned a bucket (move #%d)\n",
					time.Since(start).Round(time.Millisecond), moves)
			}
		}
	}
	got := f.Collect()
	elapsed := time.Since(start)

	// Verify losslessness against ground truth.
	var missing int64
	for k, w := range truth {
		if g := got[k]; g == nil {
			missing += w
		} else if g.Count < w {
			missing += w - g.Count
		}
	}
	routed, lost, moves := f.Stats()
	fmt.Printf("\n%d flows in %v across 4 machines (1 killed mid-run)\n",
		routed, elapsed.Round(time.Millisecond))
	fmt.Printf("bucket moves: %d, router-lost: %d, undercount vs truth: %d\n", moves, lost, missing)

	// Top talkers.
	type kv struct {
		host  string
		count int64
		bytes float64
	}
	var tops []kv
	for k, g := range got {
		tops = append(tops, kv{k, g.Count, g.Sum})
	}
	sort.Slice(tops, func(i, j int) bool { return tops[i].count > tops[j].count })
	fmt.Println("\ntop talkers (count, bytes):")
	for i := 0; i < 5 && i < len(tops); i++ {
		fmt.Printf("  %s  %5d  %.0f\n", tops[i].host, tops[i].count, tops[i].bytes)
	}
	if missing == 0 {
		fmt.Println("\nfailover was lossless: every group count matches ground truth")
	}
}
