// Quickstart: the paper's running example — continuous queries over a
// stock ticker, using the embedded engine.
//
// It registers three standing queries (a filter, the paper's example-2
// landmark query, and the example-3 hopping average), streams two
// hundred trading days of synthetic prices through them, and prints
// what each query delivers.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"telegraphcq"
	"telegraphcq/internal/workload"
)

func main() {
	db := telegraphcq.New(telegraphcq.Options{})
	defer db.Close()

	db.MustExec(`
		CREATE STREAM ClosingStockPrices (
			timestamp int,
			stockSymbol string,
			closingPrice float
		)`)

	// Q1: plain continuous filter — every MSFT close above $50.
	q1, err := db.Submit(`
		SELECT closingPrice, timestamp
		FROM ClosingStockPrices
		WHERE stockSymbol = 'MSFT' AND closingPrice > 50.00`)
	if err != nil {
		log.Fatal(err)
	}

	// Q2 (paper example 3): every 5 trading days, the average close of
	// MSFT over the 5 most recent days.
	q2, err := db.Submit(`
		SELECT avg(closingPrice)
		FROM ClosingStockPrices
		WHERE stockSymbol = 'MSFT'
		FOR (t = ST; t < ST + 200; t += 5) {
			WindowIs(ClosingStockPrices, t - 4, t);
		}`)
	if err != nil {
		log.Fatal(err)
	}

	// Q3: per-symbol daily max over hopping 20-day windows.
	q3, err := db.Submit(`
		SELECT stockSymbol, max(closingPrice)
		FROM ClosingStockPrices
		GROUP BY stockSymbol
		FOR (t = ST; ; t += 20) {
			WindowIs(ClosingStockPrices, t + 1, t + 20);
		}`)
	if err != nil {
		log.Fatal(err)
	}

	// Stream 200 days × 8 symbols of synthetic prices. Every symbol's
	// row for day d carries logical timestamp d, so the for-loop windows
	// count trading days exactly as in the paper.
	for _, row := range (workload.Stocks{Seed: 42}).Rows(200 * 8) {
		day := row.Values[0].I
		if err := db.PushAt("ClosingStockPrices", day, row.Values...); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Barrier(); err != nil {
		log.Fatal(err)
	}

	show := func(name string, q *telegraphcq.Query, max int) {
		fmt.Printf("--- %s ---\n", name)
		n := 0
		for {
			row, ok := q.TryNext()
			if !ok {
				break
			}
			n++
			if n <= max {
				fmt.Println(" ", row)
			}
		}
		if n > max {
			fmt.Printf("  ... and %d more rows\n", n-max)
		}
		fmt.Printf("  (%d rows total)\n", n)
	}
	show("Q1: MSFT closes above $50", q1, 5)
	show("Q2: 5-day hopping AVG (paper example 3)", q2, 5)
	show("Q3: per-symbol MAX over 20-day windows", q3, 8)
}
