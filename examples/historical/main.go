// Historical browsing and disconnected operation: the PSoup modalities
// (§3.2) and backward-moving windows (§4.1.1) over an ARCHIVED stream.
//
// The example archives a year of ticks to disk, then:
//  1. browses history with a backward-moving window ("windows that move
//     backwards starting from the present time"),
//  2. registers PSoup standing queries, disconnects, and invokes them
//     later — new data applied to old queries,
//  3. registers a late query that still sees history — new query
//     applied to old data.
//
// Run with:
//
//	go run ./examples/historical
package main

import (
	"fmt"
	"log"
	"os"

	"telegraphcq"
	"telegraphcq/internal/expr"
	"telegraphcq/internal/psoup"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
	"telegraphcq/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "tcq-historical")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db := telegraphcq.New(telegraphcq.Options{DataDir: dir})
	defer db.Close()
	db.MustExec(`CREATE STREAM ClosingStockPrices (
		timestamp int, stockSymbol string, closingPrice float) ARCHIVED`)

	// Archive 250 trading days × 8 symbols.
	rows := (workload.Stocks{Seed: 11}).Rows(250 * 8)
	for _, r := range rows {
		if err := db.PushAt("ClosingStockPrices", r.Values[0].I, r.Values...); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Barrier(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archived %d ticks (%d pages on disk)\n\n",
		db.Archive("ClosingStockPrices").Count(),
		db.Archive("ClosingStockPrices").Pages())

	// 1. Backward browsing: four 20-day windows walking into the past.
	fmt.Println("backward browsing from the present (20-day windows):")
	spec := telegraphcq.Backward("ClosingStockPrices", 20, 20, 4)
	err = db.ScanHistory("ClosingStockPrices", spec, db.CurSeq("ClosingStockPrices"),
		func(inst window.Instance, rows []*tuple.Tuple) bool {
			r := inst.Ranges["ClosingStockPrices"]
			var hi float64
			for _, t := range rows {
				if t.Values[1].S == "MSFT" && t.Values[2].F > hi {
					hi = t.Values[2].F
				}
			}
			fmt.Printf("  days %3d..%3d: %3d ticks, MSFT high %.2f\n", r.Left, r.Right, len(rows), hi)
			return true
		})
	if err != nil {
		log.Fatal(err)
	}

	// 1b. The same browsing, via SQL: a backward-moving FOR loop over an
	// ARCHIVED stream is served from the archive and completes at once.
	hq, err := db.Submit(`
		SELECT max(closingPrice) FROM ClosingStockPrices
		WHERE stockSymbol = 'MSFT'
		FOR (t = ST; t > ST - 80; t -= 20) {
			WindowIs(ClosingStockPrices, t - 19, t);
		}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe same via SQL (MSFT 20-day highs, walking back):")
	for {
		row, ok := hq.TryNext()
		if !ok {
			break
		}
		fmt.Printf("  t=%s  max=%s\n", row.Values[0], row.Values[1])
	}

	// 2+3. PSoup: queries and data join symmetrically.
	ps := psoup.New()
	gt := func(v float64) expr.Expr {
		return expr.Bin(expr.OpGt, expr.Col("", "closingPrice"), expr.Lit(tuple.Float(v)))
	}
	// A standing query registered before the data.
	if err := ps.AddQuery(&psoup.Query{
		ID: 0, Stream: "ClosingStockPrices", Where: gt(95),
		Window: telegraphcq.Sliding("ClosingStockPrices", 400, 1, 0),
	}); err != nil {
		log.Fatal(err)
	}
	// Replay the archive into PSoup as "live" data.
	for _, r := range rows {
		if err := ps.PushData(r); err != nil {
			log.Fatal(err)
		}
	}
	// The client was disconnected the whole time; it reconnects and
	// invokes: results were materialized while it was away.
	res, err := ps.Invoke(0, int64(len(rows)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPSoup: disconnected client reconnects → %d closes above $95 in its window\n", len(res))

	// A latecomer query still sees old data (new query ⋈ old data).
	if err := ps.AddQuery(&psoup.Query{
		ID: 1, Stream: "ClosingStockPrices", Where: gt(99),
	}); err != nil {
		log.Fatal(err)
	}
	res, err = ps.Invoke(1, int64(len(rows)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PSoup: late query over history → %d closes above $99 ever\n", len(res))
	st := ps.Stats()
	fmt.Printf("PSoup stats: %d data, %d queries, %d materialized matches, %d retrieved\n",
		st.DataArrived, st.QueriesAdded, st.Matches, st.RowsRetrieved)
}
