// Sensor network: streams arrive through a sensor-proxy wrapper whose
// sample rate the application adjusts based on what queries observe —
// the control loop of §1.1 ("query results may be used to affect the
// environment or redirect further query processing or data production")
// and the Fjords sensor proxy of [MF02].
//
// An anomaly query watches for temperature spikes; while the network is
// quiet the proxy samples slowly, and when a spike appears the
// application turns the sample rate up to zoom in, then back down.
//
// Run with:
//
//	go run ./examples/sensors
package main

import (
	"fmt"
	"log"
	"time"

	"telegraphcq"
	"telegraphcq/internal/ingress"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/workload"
)

func main() {
	db := telegraphcq.New(telegraphcq.Options{})
	defer db.Close()

	db.MustExec(`CREATE STREAM sensors (node int, temp float, light float)`)

	// The anomaly watcher: spikes over 60° (the synthetic workload
	// injects them with small probability).
	alerts, err := db.Submit(`SELECT node, temp FROM sensors WHERE temp > 60`)
	if err != nil {
		log.Fatal(err)
	}
	// A windowed per-node average for the dashboard.
	avgs, err := db.Submit(`
		SELECT node, avg(temp) FROM sensors
		GROUP BY node
		FOR (t = ST; ; t += 200) { WindowIs(sensors, t + 1, t + 200); }`)
	if err != nil {
		log.Fatal(err)
	}

	// Wrapper: a sensor proxy for 8 nodes with an adjustable sample rate.
	gen := workload.Sensors{Nodes: 8, SpikeProb: 0.004, Seed: 9}
	proxy := ingress.NewSensorProxy("sensors", 8, 2000, gen.Reading)
	go func() {
		err := proxy.Run(func(stream string, vals []tuple.Value) error {
			return db.Push(stream, vals...)
		})
		if err != nil {
			log.Print(err)
		}
	}()

	// Control loop: watch alerts; on a spike, crank the sample rate up
	// 10× for a moment (zoom in), then relax it.
	deadline := time.After(1200 * time.Millisecond)
	spikes := 0
	rateChanges := []string{fmt.Sprintf("t=0ms rate=%d/s", proxy.SampleRate())}
	start := time.Now()
loop:
	for {
		select {
		case <-deadline:
			break loop
		default:
		}
		row, ok := alerts.TryNext()
		if !ok {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		spikes++
		if proxy.SampleRate() < 20000 {
			proxy.SetSampleRate(20000) // zoom in on the anomaly
			rateChanges = append(rateChanges, fmt.Sprintf(
				"t=%dms spike on node %s (%.1f°) → rate=20000/s",
				time.Since(start).Milliseconds(), row.Values[0], row.Values[1].F))
			go func() {
				time.Sleep(150 * time.Millisecond)
				proxy.SetSampleRate(2000) // relax after the burst
			}()
		}
	}
	proxy.Stop()
	if err := db.Barrier(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sensor proxy delivered %d samples; %d spike alerts\n\n", proxy.Samples(), spikes)
	fmt.Println("acquisition control trace:")
	for _, rc := range rateChanges {
		fmt.Println("  ", rc)
	}
	fmt.Println("\nper-node averages (last few windows):")
	n := 0
	for {
		row, ok := avgs.TryNext()
		if !ok {
			break
		}
		n++
		if n <= 8 {
			fmt.Println("  ", row)
		}
	}
	fmt.Printf("  (%d aggregate rows total)\n", n)
}
