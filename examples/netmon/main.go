// Network monitoring: the introduction's motivating application —
// many simultaneous continuous queries over a high-volume stream of
// network flow records, sharing one adaptive dataflow.
//
// The example registers dozens of per-analyst watch queries (ports,
// byte thresholds, specific hosts), a stream–table join against a
// threat-intelligence table, and a windowed per-host bandwidth
// aggregate; it then pushes a skewed synthetic flow trace through the
// shared engine and reports what each class of query saw — plus how
// much work sharing saved (one grouped filter serves all the threshold
// queries).
//
// Run with:
//
//	go run ./examples/netmon
package main

import (
	"fmt"
	"log"

	"telegraphcq"
	"telegraphcq/internal/workload"
)

func main() {
	db := telegraphcq.New(telegraphcq.Options{})
	defer db.Close()

	db.MustExec(`CREATE STREAM flows (src string, dst string, port int, bytes float)`)
	db.MustExec(`CREATE TABLE watchlist (host string, reason string)`)
	db.MustExec(`INSERT INTO watchlist VALUES
		('h001', 'known scanner'),
		('h007', 'c2 server'),
		('h013', 'tor exit')`)

	// A fleet of analyst queries: byte thresholds at different levels.
	// All of them fold into ONE shared grouped filter on flows.bytes.
	var thresholds []*telegraphcq.Query
	for i := 0; i < 20; i++ {
		q, err := db.Submit(fmt.Sprintf(
			`SELECT src, dst, bytes FROM flows WHERE bytes > %d`, 100000+i*2000))
		if err != nil {
			log.Fatal(err)
		}
		thresholds = append(thresholds, q)
	}

	// Port watchers: ssh and dns.
	ssh, err := db.Submit(`SELECT src, dst FROM flows WHERE port = 22`)
	if err != nil {
		log.Fatal(err)
	}

	// Stream ⋈ table: flows touching the threat watchlist.
	threats, err := db.Submit(`
		SELECT flows.src, watchlist.reason, bytes
		FROM flows, watchlist
		WHERE flows.dst = watchlist.host`)
	if err != nil {
		log.Fatal(err)
	}

	// Windowed aggregate: per-source byte counts over hopping windows of
	// 1000 flow arrivals.
	bandwidth, err := db.Submit(`
		SELECT src, sum(bytes), count(*)
		FROM flows
		GROUP BY src
		FOR (t = ST; ; t += 1000) { WindowIs(flows, t + 1, t + 1000); }`)
	if err != nil {
		log.Fatal(err)
	}

	const n = 5000
	for _, row := range (workload.Flows{Hosts: 16, Seed: 7}).Rows(n) {
		if err := db.Push("flows", row.Values...); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Barrier(); err != nil {
		log.Fatal(err)
	}

	count := func(q *telegraphcq.Query) int {
		n := 0
		for {
			if _, ok := q.TryNext(); !ok {
				return n
			}
			n++
		}
	}

	fmt.Printf("pushed %d flow records through %d standing queries\n\n", n, 23)
	fmt.Println("threshold watchers (shared grouped filter):")
	for i, q := range thresholds {
		if i%5 == 0 {
			fmt.Printf("  bytes > %-7d → %d alerts\n", 100000+i*2000, count(q))
		} else {
			count(q)
		}
	}
	fmt.Printf("\nssh watcher: %d flows on port 22\n", count(ssh))

	fmt.Println("\nthreat-intel joins (first 5):")
	shown := 0
	for {
		row, ok := threats.TryNext()
		if !ok {
			break
		}
		if shown < 5 {
			fmt.Println("  ", row)
		}
		shown++
	}
	fmt.Printf("  (%d total)\n", shown)

	fmt.Println("\ntop bandwidth rows (first window, first 5 groups):")
	for i := 0; i < 5; i++ {
		row, ok := bandwidth.TryNext()
		if !ok {
			break
		}
		fmt.Println("  ", row)
	}
}
